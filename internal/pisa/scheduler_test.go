package pisa

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// sharedEngines registers n engines over fresh copies of the standard
// test program on one scheduler.
func sharedEngines(t *testing.T, s *Scheduler, n int, mode ExecMode) ([]*Engine, FieldID, FieldID, FieldID) {
	t.Helper()
	var engines []*Engine
	var k, out, class FieldID
	for i := 0; i < n; i++ {
		prog, kf, of, cf := engineTestProg(t)
		k, out, class = kf, of, cf
		engines = append(engines, s.NewChainEngine("m", []*Program{prog}, nil,
			[]FieldID{kf}, []FieldID{of}, cf, 1, mode))
	}
	return engines, k, out, class
}

// TestSchedulerSharedMatchesSolo pins the tentpole's equivalence
// contract: an engine registered on a shared multi-model scheduler
// classifies bit-identically to a solo engine over the same program.
func TestSchedulerSharedMatchesSolo(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	jobs := make([]Job, 513)
	for i := range jobs {
		jobs[i] = Job{Hash: rng.Uint32(), In: []int32{int32(rng.Intn(256))}}
	}
	soloProg, k, out, class := engineTestProg(t)
	solo := NewEngine(soloProg, []FieldID{k}, []FieldID{out}, class, 4)
	want := solo.RunBatch(jobs)
	solo.Close()

	for _, mode := range []ExecMode{ExecCompiled, ExecInterpret} {
		s := NewScheduler(4)
		engines, _, _, _ := sharedEngines(t, s, 3, mode)
		// Replay the same batch on every co-resident engine, concurrently.
		var wg sync.WaitGroup
		results := make([][]Result, len(engines))
		for ei, e := range engines {
			wg.Add(1)
			go func(ei int, e *Engine) {
				defer wg.Done()
				results[ei] = e.RunBatch(jobs)
			}(ei, e)
		}
		wg.Wait()
		for ei, res := range results {
			for i := range res {
				if res[i].Class != want[i].Class || res[i].Outs[0] != want[i].Outs[0] {
					t.Fatalf("mode=%v engine %d job %d: shared %+v, solo %+v", mode, ei, i, res[i], want[i])
				}
			}
		}
		for _, e := range engines {
			e.Close()
		}
		s.Close()
	}
}

// TestSchedulerStats checks the per-model serving counters: packets and
// tasks accumulate per session, and Scheduler.Stats reports every
// registered model.
func TestSchedulerStats(t *testing.T) {
	s := NewScheduler(2)
	defer s.Close()
	progA, k, out, class := engineTestProg(t)
	a := s.NewChainEngine("model-a", []*Program{progA}, nil, []FieldID{k}, []FieldID{out}, class, 2, ExecCompiled)
	defer a.Close()
	progB, k2, out2, class2 := engineTestProg(t)
	b := s.NewChainEngine("model-b", []*Program{progB}, nil, []FieldID{k2}, []FieldID{out2}, class2, 1, ExecCompiled)
	defer b.Close()

	jobs := make([]Job, 100)
	for i := range jobs {
		jobs[i] = Job{Hash: uint32(i), In: []int32{int32(i % 256)}}
	}
	a.RunBatch(jobs)
	a.RunBatch(jobs)
	b.RunBatch(jobs[:40])

	as, bs := a.Stats(), b.Stats()
	if as.Name != "model-a" || as.Weight != 2 {
		t.Fatalf("model-a stats identity: %+v", as)
	}
	if as.Packets != 200 {
		t.Fatalf("model-a served %d packets, want 200", as.Packets)
	}
	if bs.Packets != 40 {
		t.Fatalf("model-b served %d packets, want 40", bs.Packets)
	}
	if as.Tasks == 0 || bs.Tasks == 0 {
		t.Fatalf("tasks not counted: a=%d b=%d", as.Tasks, bs.Tasks)
	}
	all := s.Stats()
	if len(all) != 2 || all[0].Name != "model-a" || all[1].Name != "model-b" {
		t.Fatalf("scheduler stats = %+v", all)
	}
}

// TestSchedulerFairnessNoStarvation is the starvation guard: with one
// model replaying a 100× larger trace on the same shared budget, the
// small model must keep making progress and finish long before the
// large one — weighted fair draining may not let the big queue
// monopolise the pool.
func TestSchedulerFairnessNoStarvation(t *testing.T) {
	s := NewScheduler(2)
	defer s.Close()
	progBig, k, out, class := engineTestProg(t)
	big := s.NewChainEngine("big", []*Program{progBig}, nil, []FieldID{k}, []FieldID{out}, class, 1, ExecCompiled)
	defer big.Close()
	progSmall, k2, out2, class2 := engineTestProg(t)
	small := s.NewChainEngine("small", []*Program{progSmall}, nil, []FieldID{k2}, []FieldID{out2}, class2, 1, ExecCompiled)
	defer small.Close()

	rng := rand.New(rand.NewSource(37))
	mkJobs := func(n int) []Job {
		jobs := make([]Job, n)
		for i := range jobs {
			jobs[i] = Job{Hash: rng.Uint32(), In: []int32{int32(rng.Intn(256))}}
		}
		return jobs
	}
	const iters = 50
	bigJobs := mkJobs(20000) // 100× the small model's trace
	smallJobs := mkJobs(200)

	var bigRunning atomic.Bool
	bigRunning.Store(true)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < iters; i++ {
			big.RunBatch(bigJobs)
		}
		bigRunning.Store(false)
	}()
	// The small model replays its trace while the big one saturates the
	// pool; count how many of its batches complete while the big model
	// still has work in flight — a starving scheduler would park them
	// all until the big replay drains.
	interleaved := 0
	for i := 0; i < iters; i++ {
		small.RunBatch(smallJobs)
		if bigRunning.Load() {
			interleaved++
		}
	}
	<-done

	bs, ss := big.Stats(), small.Stats()
	if bs.Packets != uint64(iters*len(bigJobs)) {
		t.Fatalf("big model served %d packets, want %d", bs.Packets, iters*len(bigJobs))
	}
	if ss.Packets != uint64(iters*len(smallJobs)) {
		t.Fatalf("small model served %d packets, want %d", ss.Packets, iters*len(smallJobs))
	}
	if interleaved < iters/10 {
		t.Fatalf("only %d/%d small batches completed while the 100× model was replaying — starved by the shared pool",
			interleaved, iters)
	}
}

// TestSchedulerStealsSparseShards covers the work-stealing path: a
// session whose register sizes clamp it to fewer shards than the pool
// budget queues tasks on only some workers, and the idle workers must
// steal them — with results still bit-identical to a solo replay.
func TestSchedulerStealsSparseShards(t *testing.T) {
	const slots = 2 // register size 2 clamps shards to 2 on a budget-4 pool
	build := func() (*Program, *Register, FieldID, FieldID) {
		var l Layout
		slot := l.MustAdd("slot", 16)
		v := l.MustAdd("v", 32)
		acc := l.MustAdd("acc", 32)
		prog := NewProgram("sparse", &l, Tofino2)
		reg, err := NewRegister("state", 32, slots)
		if err != nil {
			t.Fatal(err)
		}
		ri := prog.AddRegister(reg)
		prog.Place(0, &Table{
			Name: "accumulate", Kind: MatchNone, DefaultData: []int32{},
			Action: []Op{{Kind: OpRegAdd, Reg: ri, Dst: acc, A: slot, B: v}},
		})
		if err := prog.Validate(); err != nil {
			t.Fatal(err)
		}
		_ = v
		return prog, reg, slot, acc
	}
	rng := rand.New(rand.NewSource(41))
	jobs := make([]Job, 500)
	for i := range jobs {
		s := uint32(rng.Intn(slots))
		jobs[i] = Job{Hash: s, In: []int32{int32(s), int32(rng.Intn(100))}}
	}

	refProg, refReg, _, _ := build()
	refPHV := refProg.Layout.NewPHV()
	for _, j := range jobs {
		refPHV.Reset()
		refPHV.Set(FieldID(0), j.In[0])
		refPHV.Set(FieldID(1), j.In[1])
		refProg.Process(refPHV)
	}

	s := NewScheduler(4)
	defer s.Close()
	prog, reg, slotF, accF := build()
	eng := s.NewChainEngine("sparse", []*Program{prog}, nil,
		[]FieldID{slotF, FieldID(1)}, []FieldID{accF}, accF, 1, ExecCompiled)
	defer eng.Close()
	if eng.Workers() != slots {
		t.Fatalf("shards = %d, want %d (clamped below the budget)", eng.Workers(), slots)
	}
	for iter := 0; iter < 20; iter++ { // repeat so stealing actually happens
		eng.RunBatch(jobs)
	}
	for sl := 0; sl < slots; sl++ {
		if got, want := reg.Get(sl), refReg.Get(sl)*20; got != want {
			t.Fatalf("slot %d: sharded state %d, sequential %d", sl, got, want)
		}
	}
}

// TestSchedulerSharedStatefulConsistency extends the per-flow register
// guarantee to shared pools: two stateful engines replay concurrently
// on one scheduler, and each ends with exactly the sequential register
// state (shard tasks of one engine never interleave within a flow).
func TestSchedulerSharedStatefulConsistency(t *testing.T) {
	const slots = 4
	build := func() (*Program, *Register, FieldID, FieldID, FieldID) {
		var l Layout
		slot := l.MustAdd("slot", 16)
		v := l.MustAdd("v", 32)
		acc := l.MustAdd("acc", 32)
		prog := NewProgram("flows", &l, Tofino2)
		reg, err := NewRegister("state", 32, slots)
		if err != nil {
			t.Fatal(err)
		}
		ri := prog.AddRegister(reg)
		prog.Place(0, &Table{
			Name: "accumulate", Kind: MatchNone, DefaultData: []int32{},
			Action: []Op{{Kind: OpRegAdd, Reg: ri, Dst: acc, A: slot, B: v}},
		})
		if err := prog.Validate(); err != nil {
			t.Fatal(err)
		}
		return prog, reg, slot, v, acc
	}
	rng := rand.New(rand.NewSource(13))
	jobs := make([]Job, 600)
	for i := range jobs {
		s := uint32(rng.Intn(slots))
		jobs[i] = Job{Hash: s, In: []int32{int32(s), int32(rng.Intn(100))}}
	}

	// Sequential reference.
	refProg, refReg, slot, v, _ := build()
	phv := refProg.Layout.NewPHV()
	for _, j := range jobs {
		phv.Reset()
		phv.Set(slot, j.In[0])
		phv.Set(v, j.In[1])
		refProg.Process(phv)
	}
	want := make([]int32, slots)
	for s := 0; s < slots; s++ {
		want[s] = refReg.Get(s)
	}

	s := NewScheduler(4)
	defer s.Close()
	type inst struct {
		eng *Engine
		reg *Register
	}
	var insts []inst
	for i := 0; i < 2; i++ {
		prog, reg, slotF, vF, accF := build()
		eng := s.NewChainEngine("stateful", []*Program{prog}, nil,
			[]FieldID{slotF, vF}, []FieldID{accF}, accF, 1, ExecCompiled)
		defer eng.Close()
		insts = append(insts, inst{eng, reg})
	}
	var wg sync.WaitGroup
	for _, in := range insts {
		wg.Add(1)
		go func(e *Engine) {
			defer wg.Done()
			e.RunBatch(jobs)
		}(in.eng)
	}
	wg.Wait()
	for ii, in := range insts {
		for sl := 0; sl < slots; sl++ {
			if got := in.reg.Get(sl); got != want[sl] {
				t.Fatalf("engine %d slot %d: shared-pool state %d, sequential %d", ii, sl, got, want[sl])
			}
		}
	}
}

// TestSchedulerWaitDepthStats pins the serving-stats extensions: every
// served task lands in exactly one wait bucket and one queue-depth
// bucket (ΣWaitHist == Tasks == ΣQueueHist), the cumulative wait is
// consistent with the histogram, and the weight column tracks live
// SetWeight retuning.
func TestSchedulerWaitDepthStats(t *testing.T) {
	s := NewScheduler(2)
	defer s.Close()
	prog, k, out, class := engineTestProg(t)
	e := s.NewChainEngine("m", []*Program{prog}, nil, []FieldID{k}, []FieldID{out}, class, 1, ExecCompiled)
	defer e.Close()

	jobs := make([]Job, 300)
	for i := range jobs {
		jobs[i] = Job{Hash: uint32(i), In: []int32{int32(i % 256)}}
	}
	for i := 0; i < 10; i++ {
		e.RunBatch(jobs)
	}
	st := e.Stats()
	var waits, depths uint64
	for i := 0; i < StatBuckets; i++ {
		waits += st.WaitHist[i]
		depths += st.QueueHist[i]
	}
	if waits != st.Tasks {
		t.Fatalf("ΣWaitHist = %d, Tasks = %d", waits, st.Tasks)
	}
	if depths != st.Tasks {
		t.Fatalf("ΣQueueHist = %d, Tasks = %d", depths, st.Tasks)
	}
	if st.Wait < 0 {
		t.Fatalf("negative cumulative wait %v", st.Wait)
	}
	if st.MeanWait() < 0 {
		t.Fatalf("negative mean wait %v", st.MeanWait())
	}

	if e.Weight() != 1 {
		t.Fatalf("initial weight %d, want 1", e.Weight())
	}
	e.SetWeight(7)
	if got := e.Stats().Weight; got != 7 {
		t.Fatalf("weight after SetWeight(7) = %d", got)
	}
	e.SetWeight(0) // clamped
	if got := e.Weight(); got != 1 {
		t.Fatalf("weight after SetWeight(0) = %d, want 1 (clamped)", got)
	}

	// Accumulation helper used across version swaps.
	var acc EngineStats
	acc.Add(st)
	acc.Add(st)
	if acc.Tasks != 2*st.Tasks || acc.Packets != 2*st.Packets || acc.Wait != 2*st.Wait {
		t.Fatalf("EngineStats.Add: %+v vs base %+v", acc, st)
	}
}

// TestSubmitBatchAsync covers the non-blocking submission API: one
// driver saturates two sessions by submitting to both before waiting,
// results match RunBatch, and Drain quiesces an outstanding batch.
func TestSubmitBatchAsync(t *testing.T) {
	s := NewScheduler(2)
	defer s.Close()
	progA, k, out, class := engineTestProg(t)
	a := s.NewChainEngine("a", []*Program{progA}, nil, []FieldID{k}, []FieldID{out}, class, 1, ExecCompiled)
	defer a.Close()
	progB, k2, out2, class2 := engineTestProg(t)
	b := s.NewChainEngine("b", []*Program{progB}, nil, []FieldID{k2}, []FieldID{out2}, class2, 1, ExecCompiled)
	defer b.Close()

	rng := rand.New(rand.NewSource(5))
	jobs := make([]Job, 400)
	for i := range jobs {
		jobs[i] = Job{Hash: rng.Uint32(), In: []int32{int32(rng.Intn(256))}}
	}
	want := a.RunBatch(jobs)

	for iter := 0; iter < 20; iter++ {
		pa := a.SubmitBatch(jobs)
		pb := b.SubmitBatch(jobs) // both queues full before either wait
		ra, rb := pa.Wait(), pb.Wait()
		for i := range want {
			if ra[i].Class != want[i].Class || ra[i].Outs[0] != want[i].Outs[0] {
				t.Fatalf("async a diverged at %d: %+v vs %+v", i, ra[i], want[i])
			}
			if rb[i].Class != want[i].Class || rb[i].Outs[0] != want[i].Outs[0] {
				t.Fatalf("async b diverged at %d: %+v vs %+v", i, rb[i], want[i])
			}
		}
		if again := pa.Wait(); &again[0] != &ra[0] {
			t.Fatalf("second Wait returned a different result slice")
		}
	}

	// Drain from a third goroutine quiesces the outstanding batch.
	p := a.SubmitBatch(jobs)
	done := make(chan struct{})
	go func() {
		a.Drain()
		close(done)
	}()
	<-done
	res := p.Wait()
	if len(res) != len(jobs) {
		t.Fatalf("drained batch lost results: %d/%d", len(res), len(jobs))
	}
	if p := a.SubmitBatch(nil); len(p.Wait()) != 0 {
		t.Fatal("empty submit")
	}
}
