package pisa

import (
	"math/rand"
	"testing"
)

// randProgram generates a random program exercising every compiled
// specialisation: merged always-runs, gated tables, direct-indexed and
// hashed exact tables, interval-coded and generic ternary tables, and
// register read-modify-writes.
func randProgram(t *testing.T, rng *rand.Rand) (*Program, []FieldID) {
	t.Helper()
	var l Layout
	fields := make([]FieldID, 8)
	for i := range fields {
		fields[i] = l.MustAdd(fieldName(i), 16)
	}
	prog := NewProgram("fuzz", &l, Tofino2)
	reg, err := NewRegister("r", 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	ri := prog.AddRegister(reg)

	f := func() FieldID { return fields[rng.Intn(len(fields))] }
	randOps := func(n, dataLen int) []Op {
		ops := make([]Op, n)
		for i := range ops {
			switch rng.Intn(8) {
			case 0:
				ops[i] = Op{Kind: OpSet, Dst: f(), Imm: int32(rng.Intn(100))}
			case 1:
				ops[i] = Op{Kind: OpAdd, Dst: f(), A: f(), B: f()}
			case 2:
				ops[i] = Op{Kind: OpMax, Dst: f(), A: f(), B: f()}
			case 3:
				ops[i] = Op{Kind: OpAndImm, Dst: f(), A: f(), Imm: 0xff}
			case 4:
				ops[i] = Op{Kind: OpSelGE, Dst: f(), A: f(), B: f(), Imm: int32(rng.Intn(10))}
			case 5:
				if dataLen > 0 {
					ops[i] = Op{Kind: OpSetData, Dst: f(), DataIdx: rng.Intn(dataLen)}
				} else {
					ops[i] = Op{Kind: OpMove, Dst: f(), A: f()}
				}
			case 6:
				if dataLen > 0 {
					ops[i] = Op{Kind: OpAddData, Dst: f(), A: f(), DataIdx: rng.Intn(dataLen)}
				} else {
					ops[i] = Op{Kind: OpSub, Dst: f(), A: f(), B: f()}
				}
			default:
				// Register RMW on a cell derived from a field value.
				idx := f()
				ops[i] = Op{Kind: OpAndImm, Dst: idx, A: idx, Imm: 7}
				if i+1 < len(ops) {
					i++
					ops[i] = Op{Kind: OpRegAdd, Reg: ri, Dst: f(), A: idx, B: f()}
				}
			}
		}
		return ops
	}
	randGate := func() *Gate {
		if rng.Intn(3) != 0 {
			return nil
		}
		return &Gate{Field: f(), Op: GateOp(1 + rng.Intn(4)), Value: int32(rng.Intn(4))}
	}
	randData := func(n int) []int32 {
		d := make([]int32, n)
		for i := range d {
			d[i] = int32(rng.Intn(200) - 100)
		}
		return d
	}

	stage := 0
	addTable := func(tbl *Table) {
		prog.Place(stage, tbl)
		stage++
	}

	for n := 0; n < 6+rng.Intn(6); n++ {
		dataLen := 1 + rng.Intn(3)
		switch rng.Intn(6) {
		case 0: // always-run (merge candidates: often ungated, back to back)
			addTable(&Table{Name: nm("always", n), Kind: MatchNone,
				DefaultData: randData(dataLen), Action: randOps(3, dataLen), Gate: randGate()})
		case 1: // narrow single-field exact -> direct index
			w := 4 + rng.Intn(5)
			entries := make([]Entry, 1+rng.Intn(10))
			for i := range entries {
				entries[i] = Entry{Key: []uint32{uint32(rng.Intn(1 << w))}, Data: randData(dataLen)}
			}
			var def []int32
			if rng.Intn(2) == 0 {
				def = randData(dataLen)
			}
			addTable(&Table{Name: nm("direct", n), Kind: MatchExact,
				KeyFields: []FieldID{f()}, KeyWidths: []int{w}, Entries: entries,
				Action: randOps(2, dataLen), DefaultData: def, Gate: randGate()})
		case 2: // multi-field exact -> hash
			entries := make([]Entry, 1+rng.Intn(12))
			for i := range entries {
				entries[i] = Entry{Key: []uint32{uint32(rng.Intn(1 << 10)), uint32(rng.Intn(1 << 12))},
					Data: randData(dataLen)}
			}
			addTable(&Table{Name: nm("hash", n), Kind: MatchExact,
				KeyFields: []FieldID{f(), f()}, KeyWidths: []int{10, 12}, Entries: entries,
				Action: randOps(2, dataLen), Gate: randGate()})
		case 3: // single-field prefix ternary -> dense (w<=12) or interval search
			w := 8 + rng.Intn(9)
			entries := make([]Entry, 1+rng.Intn(10))
			for i := range entries {
				plen := rng.Intn(w + 1)
				mask := widthMask(w) &^ widthMask(w-plen)
				entries[i] = Entry{Key: []uint32{uint32(rng.Intn(1<<w)) & mask},
					Mask: []uint32{mask}, Data: randData(dataLen)}
			}
			var def []int32
			if rng.Intn(2) == 0 {
				def = randData(dataLen)
			}
			addTable(&Table{Name: nm("interval", n), Kind: MatchTernary,
				KeyFields: []FieldID{f()}, KeyWidths: []int{w}, Entries: entries,
				Action: randOps(2, dataLen), DefaultData: def, Gate: randGate()})
		case 4: // multi-field ternary -> bitmap (prefix masks) or generic scan
			prefix := rng.Intn(2) == 0
			// One narrow and one wide dimension, so the bitmap path
			// exercises both dense rows and interval binary search.
			w0, w1 := 8, 10+rng.Intn(6)
			entries := make([]Entry, 1+rng.Intn(10))
			for i := range entries {
				var m0, m1 uint32
				if prefix {
					m0 = widthMask(w0) &^ widthMask(w0-rng.Intn(w0+1))
					m1 = widthMask(w1) &^ widthMask(w1-rng.Intn(w1+1))
				} else {
					m0, m1 = rng.Uint32()&widthMask(w0), rng.Uint32()&widthMask(w1)
				}
				entries[i] = Entry{
					Key:  []uint32{rng.Uint32() & m0, rng.Uint32() & m1},
					Mask: []uint32{m0, m1}, Data: randData(dataLen)}
			}
			addTable(&Table{Name: nm("multi", n), Kind: MatchTernary,
				KeyFields: []FieldID{f(), f()}, KeyWidths: []int{w0, w1}, Entries: entries,
				Action: randOps(2, dataLen), Gate: randGate()})
		default: // wide single-field exact -> hashed, not direct
			entries := make([]Entry, 1+rng.Intn(8))
			for i := range entries {
				entries[i] = Entry{Key: []uint32{rng.Uint32() & widthMask(16)}, Data: randData(dataLen)}
			}
			// Duplicate a key occasionally to test first-match priority.
			if len(entries) > 2 {
				entries[len(entries)-1].Key[0] = entries[0].Key[0]
			}
			addTable(&Table{Name: nm("exact16", n), Kind: MatchExact,
				KeyFields: []FieldID{f()}, KeyWidths: []int{16}, Entries: entries,
				Action: randOps(2, dataLen), Gate: randGate()})
		}
	}
	return prog, fields
}

func fieldName(i int) string { return string(rune('a' + i)) }

func nm(base string, n int) string { return base + string(rune('0'+n)) }

// TestCompiledMatchesInterpreterFuzz is the differential equivalence
// test at the pisa level: random programs covering every execUnit kind,
// random packets, full-PHV and register-state bit-identity between
// Program.Process and CompiledProgram.Process.
func TestCompiledMatchesInterpreterFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 40; trial++ {
		prog, fields := randProgram(t, rng)
		plan := CompileProgram(prog)
		ipv := prog.Layout.NewPHV()
		cpv := prog.Layout.NewPHV()
		for pkt := 0; pkt < 50; pkt++ {
			in := make([]int32, len(fields))
			for i := range in {
				in[i] = int32(rng.Intn(1 << 16))
			}
			// Interpreted pass.
			ipv.Reset()
			for i, f := range fields {
				ipv.Set(f, in[i])
			}
			prog.Process(ipv)
			iregs := snapshotRegs(prog)
			resetRegs(prog)
			// Compiled pass on the same register baseline.
			cpv.Reset()
			for i, f := range fields {
				cpv.Set(f, in[i])
			}
			plan.Process(cpv)
			cregs := snapshotRegs(prog)
			resetRegs(prog)

			for i := range ipv.Vals {
				if ipv.Vals[i] != cpv.Vals[i] {
					t.Fatalf("trial %d pkt %d: field %s interp %d compiled %d",
						trial, pkt, prog.Layout.Name(FieldID(i)), ipv.Vals[i], cpv.Vals[i])
				}
			}
			for r := range iregs {
				for c := range iregs[r] {
					if iregs[r][c] != cregs[r][c] {
						t.Fatalf("trial %d pkt %d: reg %d cell %d interp %d compiled %d",
							trial, pkt, r, c, iregs[r][c], cregs[r][c])
					}
				}
			}
		}
	}
}

func snapshotRegs(p *Program) [][]int32 {
	out := make([][]int32, len(p.Registers))
	for i, r := range p.Registers {
		out[i] = make([]int32, r.Size)
		for c := 0; c < r.Size; c++ {
			out[i][c] = r.Get(c)
		}
	}
	return out
}

func resetRegs(p *Program) {
	for _, r := range p.Registers {
		r.Reset()
	}
}

// TestCompiledAlwaysMerge checks that runs of ungated MatchNone tables
// collapse into one unit with correctly rebased action-data indices.
func TestCompiledAlwaysMerge(t *testing.T) {
	var l Layout
	a := l.MustAdd("a", 32)
	b := l.MustAdd("b", 32)
	prog := NewProgram("merge", &l, Tofino2)
	prog.Place(0, &Table{Name: "t0", Kind: MatchNone, DefaultData: []int32{7},
		Action: []Op{{Kind: OpSetData, Dst: a, DataIdx: 0}}})
	prog.Place(1, &Table{Name: "t1", Kind: MatchNone, DefaultData: []int32{0, 35},
		Action: []Op{{Kind: OpSetData, Dst: b, DataIdx: 1}}})
	prog.Place(2, &Table{Name: "t2", Kind: MatchNone, DefaultData: []int32{},
		Action: []Op{{Kind: OpAdd, Dst: a, A: a, B: b}}})
	plan := CompileProgram(prog)
	if len(plan.units) != 1 {
		t.Fatalf("always-run not merged: %d units", len(plan.units))
	}
	phv := l.NewPHV()
	plan.Process(phv)
	if phv.Get(a) != 42 || phv.Get(b) != 35 {
		t.Fatalf("merged run: a=%d b=%d, want 42/35", phv.Get(a), phv.Get(b))
	}
	// Source table actions must be untouched by the merge's rebasing.
	if op := prog.Stages[1].Tables[0].Action[0]; op.DataIdx != 1 {
		t.Fatalf("merge mutated source table op: DataIdx=%d", op.DataIdx)
	}
}

// TestCompiledIntervalPriority pins first-match-wins on overlapping
// range-coded entries (the two-level tables append a catch-all last).
func TestCompiledIntervalPriority(t *testing.T) {
	var l Layout
	k := l.MustAdd("k", 8)
	out := l.MustAdd("out", 8)
	prog := NewProgram("prio", &l, Tofino2)
	prog.Place(0, &Table{Name: "t", Kind: MatchTernary,
		KeyFields: []FieldID{k}, KeyWidths: []int{8},
		Entries: []Entry{
			{Key: []uint32{0x40}, Mask: []uint32{0xc0}, Data: []int32{1}}, // [64,127]
			{Key: []uint32{0x00}, Mask: []uint32{0x80}, Data: []int32{2}}, // [0,127], shadowed above
			{Key: []uint32{0x00}, Mask: []uint32{0x00}, Data: []int32{3}}, // catch-all
		},
		Action: []Op{{Kind: OpSetData, Dst: out, DataIdx: 0}}, DataWidthBits: 8})
	plan := CompileProgram(prog)
	ipv, cpv := l.NewPHV(), l.NewPHV()
	for v := 0; v < 256; v++ {
		ipv.Reset()
		ipv.Set(k, int32(v))
		prog.Process(ipv)
		cpv.Reset()
		cpv.Set(k, int32(v))
		plan.Process(cpv)
		if ipv.Get(out) != cpv.Get(out) {
			t.Fatalf("k=%d: interp %d compiled %d", v, ipv.Get(out), cpv.Get(out))
		}
	}
}
