package pisa

import (
	"math/rand"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/pegasus-idp/pegasus/internal/faultinject"
)

// TestDrainStreamCloseMidFill pins the close-during-fill edge: when the
// producer closes the channel while drainStream is topping up a
// micro-batch, the partial buffer is still flushed exactly once and the
// total matches what was sent.
func TestDrainStreamCloseMidFill(t *testing.T) {
	in := make(chan int, 10)
	for i := 0; i < 10; i++ {
		in <- i
	}
	close(in)

	var flushes [][]int
	total := drainStream(in, func(buf []int) {
		flushes = append(flushes, append([]int(nil), buf...))
	})
	if total != 10 {
		t.Fatalf("total = %d, want 10", total)
	}
	// All 10 items are buffered and available, so the fill loop drains
	// them all, hits the closed channel mid-fill, and flushes once.
	if len(flushes) != 1 || len(flushes[0]) != 10 {
		t.Fatalf("flush sizes = %v, want one flush of 10", flushSizes(flushes))
	}
	for i, v := range flushes[0] {
		if v != i {
			t.Fatalf("flush[0][%d] = %d, want %d", i, v, i)
		}
	}
}

// TestDrainStreamTrickle pins single-item-trickle behavior: a producer
// that sends one item and then waits for the flush before sending the
// next must see one flush per item — the adaptive chunk shrinking
// toward streamChunkMin must never make drainStream hold items back
// waiting for a fuller batch.
func TestDrainStreamTrickle(t *testing.T) {
	const n = 64
	in := make(chan int)
	flushed := make(chan struct{})
	go func() {
		defer close(in)
		for i := 0; i < n; i++ {
			in <- i
			<-flushed // rendezvous: next item only after the flush landed
		}
	}()

	var sizes []int
	seq := 0
	total := drainStream(in, func(buf []int) {
		sizes = append(sizes, len(buf))
		for _, v := range buf {
			if v != seq {
				t.Errorf("out-of-order trickle: got %d, want %d", v, seq)
			}
			seq++
		}
		flushed <- struct{}{}
	})
	if total != n {
		t.Fatalf("total = %d, want %d", total, n)
	}
	// The rendezvous guarantees at most one item is in flight, so every
	// flush is exactly one item.
	if len(sizes) != n {
		t.Fatalf("flush count = %d, want %d (sizes %v)", len(sizes), n, sizes)
	}
	for i, sz := range sizes {
		if sz != 1 {
			t.Fatalf("flush %d carried %d items, want 1", i, sz)
		}
	}
}

// TestDrainStreamSustainedMaxChunk pins the growth side of the adaptive
// chunking: a producer that always has items ready doubles the chunk
// from streamChunk up to streamChunkMax and then plateaus there — no
// flush ever exceeds streamChunkMax, and nothing is lost or reordered.
// With the whole backlog pre-buffered the flush sequence is fully
// deterministic.
func TestDrainStreamSustainedMaxChunk(t *testing.T) {
	const n = 60000
	in := make(chan int, n)
	for i := 0; i < n; i++ {
		in <- i
	}
	close(in)

	var sizes []int
	seq := 0
	total := drainStream(in, func(buf []int) {
		sizes = append(sizes, len(buf))
		for _, v := range buf {
			if v != seq {
				t.Fatalf("out-of-order emission: got %d, want %d", v, seq)
			}
			seq++
		}
	})
	if total != n {
		t.Fatalf("total = %d, want %d", total, n)
	}
	// chunk doubles on every full flush: 1024, 2048, 4096, 8192, 16384,
	// then saturates at streamChunkMax until the backlog runs out.
	want := []int{1024, 2048, 4096, 8192, 16384, 16384, 11872}
	if len(sizes) != len(want) {
		t.Fatalf("flush sizes = %v, want %v", sizes, want)
	}
	sawMax := false
	for i, sz := range sizes {
		if sz != want[i] {
			t.Fatalf("flush sizes = %v, want %v", sizes, want)
		}
		if sz > streamChunkMax {
			t.Fatalf("flush %d carried %d items, above streamChunkMax=%d", i, sz, streamChunkMax)
		}
		if sz == streamChunkMax {
			sawMax = true
		}
	}
	if !sawMax {
		t.Fatal("sustained producer never reached a streamChunkMax flush")
	}
}

func flushSizes(flushes [][]int) []int {
	sizes := make([]int, len(flushes))
	for i, f := range flushes {
		sizes[i] = len(f)
	}
	return sizes
}

// TestStealUnderWorkerStalls hammers the lock-free claim/steal path:
// on a budget-4 pool with three co-resident sessions, a rotating
// faultinject stall wedges a different worker each round while all
// sessions submit concurrently. Peers must steal the QUEUED mailbox
// slots parked behind the wedged worker, every batch must stay
// bit-identical to a solo replay, and the striped packet counters must
// account for every packet exactly. Run under -race this also checks
// the mailbox CAS protocol and the eventcount park/wake for data races.
func TestStealUnderWorkerStalls(t *testing.T) {
	defer faultinject.Reset()
	rng := rand.New(rand.NewSource(97))
	jobs := make([]Job, 257)
	for i := range jobs {
		jobs[i] = Job{Hash: rng.Uint32(), In: []int32{int32(rng.Intn(256))}}
	}
	soloProg, k, out, class := engineTestProg(t)
	solo := NewEngine(soloProg, []FieldID{k}, []FieldID{out}, class, 4)
	want := solo.RunBatch(jobs)
	solo.Close()

	s := NewScheduler(4)
	defer s.Close()
	s.StartWatchdog(5 * time.Millisecond)
	engines, _, _, _ := sharedEngines(t, s, 3, ExecCompiled)
	defer func() {
		for _, e := range engines {
			e.Close()
		}
	}()

	const rounds = 20
	for round := 0; round < rounds; round++ {
		// Wedge one worker by id for this round; two shots so the stall
		// re-fires after the first steal re-routes around it.
		faultinject.Arm(faultinject.WorkerStall, strconv.Itoa(round%4), time.Millisecond, 2)
		var wg sync.WaitGroup
		results := make([][]Result, len(engines))
		for ei, e := range engines {
			wg.Add(1)
			go func(ei int, e *Engine) {
				defer wg.Done()
				results[ei] = e.RunBatch(jobs)
			}(ei, e)
		}
		wg.Wait()
		for ei, res := range results {
			for i := range res {
				if res[i].Class != want[i].Class || res[i].Outs[0] != want[i].Outs[0] {
					t.Fatalf("round %d engine %d job %d: got %+v, want %+v", round, ei, i, res[i], want[i])
				}
			}
		}
	}
	faultinject.Reset()

	// Striped stats must account for every packet of every round, and
	// the wait histogram must cover exactly one entry per shard task.
	for ei, e := range engines {
		st := e.Stats()
		if st.Packets != uint64(rounds*len(jobs)) {
			t.Fatalf("engine %d Packets = %d, want %d", ei, st.Packets, rounds*len(jobs))
		}
		var hist uint64
		for _, b := range st.WaitHist {
			hist += b
		}
		if hist != st.Tasks {
			t.Fatalf("engine %d wait histogram sums to %d, want Tasks=%d", ei, hist, st.Tasks)
		}
	}
}
