package pisa

import (
	"fmt"
	"math/bits"
	"sort"
)

// CompiledProgram is a program lowered into a fixed execution plan. The
// interpreter (Program.Process) re-derives everything per packet: key
// slices are assembled per table, entries are scanned linearly and gate
// strings were historically re-parsed. Compilation specialises each
// table once, by match kind:
//
//   - MatchNone tables inline into a straight-line op stream; runs of
//     ungated always-tables merge into a single unit.
//   - Single-field exact tables over a narrow key become a dense
//     direct-index array over the masked key domain (O(1), no probe).
//   - Multi-field exact tables whose key packs into 64 bits become an
//     open-addressed hash table on the packed key.
//   - Single-field ternary tables whose masks are all prefix masks —
//     what consecutive range coding produces — become interval lookups
//     with first-match priority folded into the intervals: a dense
//     O(1) array over narrow key domains, a sorted-interval binary
//     search over wide ones.
//   - Multi-field ternary tables with per-field prefix masks (the
//     two-level combo tables) become per-dimension rule bitsets: each
//     dimension resolves its key to a bitset of the rules it satisfies
//     and the intersection's lowest set bit is the first matching rule
//     — O(dims · rules/64) instead of O(dims · rules).
//   - Everything else falls back to a generic scan with precomputed
//     width masks.
//
// After specialisation, each unit is sealed into a straight-line
// closure (the executor-plan idiom): the gate comparison, the lookup
// and the action applier are bound into one func with every loop
// constant (key field, mask, slot arrays) captured — Process is then
// just a walk over the closure list, with no per-packet kind dispatch.
// Always-run units additionally constant-fold their action data:
// OpSetData becomes an immediate OpSet and OpAddData a saturating
// add-immediate, so the merged op stream carries no data bus at all.
//
// The plan references the source program's entries, action programs and
// registers; it adds no mutable state of its own, so one plan may be
// shared by any number of goroutines as long as each supplies its own
// PHV. Process performs zero heap allocations.
type CompiledProgram struct {
	name  string
	units []execUnit
	regs  []*Register
	procs []func(*PHV)
}

type execKind uint8

const (
	execAlways      execKind = iota // run ops unconditionally (merged MatchNone run)
	execDirect                      // dense array over the masked key domain
	execHash                        // open-addressed hash on the packed key
	execInterval                    // binary search over sorted key intervals
	execBitmap                      // per-dimension rule-bitset intersection
	execScanExact                   // generic exact linear scan
	execScanTernary                 // generic ternary linear scan
)

// execUnit is one specialised table (or merged run of always-tables).
type execUnit struct {
	kind execKind

	hasGate   bool
	gateOp    GateOp
	gateField FieldID
	gateVal   int32

	keyFields []FieldID
	keyMasks  []uint32

	action  []Op
	defData []int32
	hasDef  bool

	// data holds the hit action-data slices; direct/hash/interval units
	// store slot indices into it.
	data [][]int32

	dense []int32 // execDirect: masked key -> slot+1 (0 = miss)

	hkeys  []uint64 // execHash: packed keys, parallel to hslot
	hslot  []int32  // execHash: slot, -1 = empty
	shifts []uint   // execHash: per-field pack shift

	lows  []uint32 // execInterval: ascending interval starts, lows[0]=0
	islot []int32  // execInterval: slot per interval, -1 = miss

	dims    []bitmapDim // execBitmap: per-key-field rule bitsets
	bsWords int         // execBitmap: bitset words per row

	entries []Entry // scan fallbacks
}

// bitmapDim is one key field of an execBitmap unit: the mapping from a
// masked key value to the bitset row of rules that dimension satisfies.
// Narrow dimensions index rows by key value directly (lows nil); wide
// dimensions binary-search lows for the elementary interval, whose
// index is the row.
type bitmapDim struct {
	rows []uint64 // rule bitsets, bsWords words per row
	lows []uint32 // ascending interval starts; nil for dense dimensions
}

// directMaxBits bounds the key width direct-indexed exact tables
// materialise: 16 bits is a 256 KiB slot array at most, far below the
// SRAM the same table would occupy on the switch.
const directMaxBits = 16

// denseRangeBits bounds the key width a ternary dimension materialises
// densely (per-value slot or bitset-row arrays); wider dimensions fall
// back to interval binary search.
const denseRangeBits = 12

// maxBitmapDims bounds the key fields of a bitmap unit: the lookup
// keeps one row slice per dimension on the stack.
const maxBitmapDims = 8

// CompileProgram lowers p into its execution plan. The plan aliases
// p's tables, entries and registers: mutating the program after
// compilation (adding entries, re-placing tables) invalidates the plan.
func CompileProgram(p *Program) *CompiledProgram {
	cp := &CompiledProgram{name: p.Name, regs: p.Registers}
	for _, st := range p.Stages {
		for _, t := range st.Tables {
			cp.addTable(t)
		}
	}
	cp.seal()
	return cp
}

// seal folds constants and lowers every specialised unit into its
// straight-line closure. Run once, after all units are added and
// merged.
func (cp *CompiledProgram) seal() {
	cp.procs = make([]func(*PHV), len(cp.units))
	for i := range cp.units {
		u := &cp.units[i]
		if u.kind == execAlways {
			foldAlwaysData(u)
		}
		cp.procs[i] = gateWrap(u, cp.lowerUnit(u))
	}
}

func (cp *CompiledProgram) addTable(t *Table) {
	t.prepare()
	u := execUnit{
		keyFields: t.KeyFields,
		keyMasks:  t.masks,
		action:    t.Action,
		defData:   t.DefaultData,
		hasDef:    t.DefaultData != nil,
	}
	if t.Gate != nil {
		switch t.Gate.Op {
		case GateEQ, GateNE, GateGE, GateLE:
		default:
			// The interpreter panics on the first gated packet; fail at
			// plan construction instead of silently never gating.
			panic(fmt.Sprintf("pisa: table %q gate has invalid op %d", t.Name, t.Gate.Op))
		}
		u.hasGate = true
		u.gateOp = t.Gate.Op
		u.gateField = t.Gate.Field
		u.gateVal = t.Gate.Value
	}
	switch t.Kind {
	case MatchNone:
		if !u.hasDef {
			return // never fires: dead table
		}
		u.kind = execAlways
		// Merge into the previous unit when both are ungated always
		// runs: one op stream, action-data indices rebased onto the
		// concatenated data vector.
		if !u.hasGate && len(cp.units) > 0 {
			prev := &cp.units[len(cp.units)-1]
			if prev.kind == execAlways && !prev.hasGate {
				base := len(prev.defData)
				if base > 0 || len(u.defData) > 0 {
					merged := append(append([]int32{}, prev.defData...), u.defData...)
					ops := append(append([]Op{}, prev.action...), u.action...)
					for i := len(prev.action); i < len(ops); i++ {
						if k := ops[i].Kind; k == OpSetData || k == OpAddData {
							ops[i].DataIdx += base
						}
					}
					prev.action, prev.defData = ops, merged
				} else {
					prev.action = append(append([]Op{}, prev.action...), u.action...)
				}
				return
			}
		}
	case MatchExact:
		cp.specializeExact(t, &u)
	case MatchTernary:
		cp.specializeTernary(t, &u)
	}
	cp.units = append(cp.units, u)
}

// specializeExact picks direct indexing, hashing or a scan for an exact
// table. Entries whose key has bits outside the match width can never
// hit (the lookup key is width-masked) and are dropped; duplicate keys
// keep the first entry, preserving interpreter priority.
func (cp *CompiledProgram) specializeExact(t *Table, u *execUnit) {
	if len(t.Entries) == 0 {
		u.kind = execScanExact // always a miss; scan of zero entries
		return
	}
	if len(t.KeyFields) == 1 && t.KeyWidths[0] <= directMaxBits {
		u.kind = execDirect
		wm := u.keyMasks[0]
		u.dense = make([]int32, int(wm)+1)
		for ei := range t.Entries {
			e := &t.Entries[ei]
			k := e.Key[0]
			if k > wm || u.dense[k] != 0 {
				continue
			}
			u.data = append(u.data, e.Data)
			u.dense[k] = int32(len(u.data))
		}
		return
	}
	totalBits := 0
	for _, w := range t.KeyWidths {
		totalBits += w
	}
	if totalBits > 64 {
		u.kind = execScanExact
		u.entries = t.Entries
		return
	}
	u.kind = execHash
	u.shifts = make([]uint, len(t.KeyWidths))
	shift := uint(0)
	for i, w := range t.KeyWidths {
		u.shifts[i] = shift
		shift += uint(w)
	}
	size := 4
	for size < 2*len(t.Entries) {
		size *= 2
	}
	u.hkeys = make([]uint64, size)
	u.hslot = make([]int32, size)
	for i := range u.hslot {
		u.hslot[i] = -1
	}
	mask := uint64(size - 1)
insert:
	for ei := range t.Entries {
		e := &t.Entries[ei]
		var pk uint64
		for i, k := range e.Key {
			if k&^u.keyMasks[i] != 0 {
				continue insert // unreachable entry
			}
			pk |= uint64(k) << u.shifts[i]
		}
		for h := mix64(pk) & mask; ; h = (h + 1) & mask {
			if u.hslot[h] < 0 {
				u.data = append(u.data, e.Data)
				u.hkeys[h] = pk
				u.hslot[h] = int32(len(u.data) - 1)
				break
			}
			if u.hkeys[h] == pk {
				continue insert // duplicate key: first entry wins
			}
		}
	}
}

// span is one reachable ternary rule's key interval in one dimension.
type span struct {
	lo, hi uint64 // inclusive
}

// specializeTernary converts prefix-mask tables — the shape consecutive
// range coding emits — into interval structures, folding
// first-match-wins priority into the construction. Single-field tables
// become a dense per-value slot array (narrow keys) or a sorted-
// interval binary search (wide keys); multi-field tables become
// per-dimension rule bitsets whose intersection's lowest set bit is
// the winning rule. Anything else keeps the generic masked scan.
func (cp *CompiledProgram) specializeTernary(t *Table, u *execUnit) {
	if len(t.KeyFields) > maxBitmapDims || !prefixEntries(t.Entries, u.keyMasks) {
		u.kind = execScanTernary
		u.entries = t.Entries
		return
	}
	// Reachable rules, in priority order, with their per-dimension
	// intervals. A rule whose value has bits outside its (width-
	// clipped) mask can never hit, because lookup keys are width-masked.
	nd := len(t.KeyFields)
	var rules [][]span
	for ei := range t.Entries {
		e := &t.Entries[ei]
		rule := make([]span, nd)
		ok := true
		for d := 0; d < nd; d++ {
			wm := uint64(u.keyMasks[d])
			m := uint64(e.Mask[d]) & wm
			if uint64(e.Key[d])&^m != 0 {
				ok = false
				break
			}
			rule[d] = span{lo: uint64(e.Key[d]), hi: uint64(e.Key[d]) | (wm &^ m)}
		}
		if !ok {
			continue
		}
		u.data = append(u.data, e.Data)
		rules = append(rules, rule)
	}
	if nd == 1 {
		cp.buildInterval(t, u, rules)
		return
	}
	cp.buildBitmap(t, u, rules)
}

// elementaryLows returns the sorted, deduplicated starts of the
// elementary intervals induced by dimension d of the rule set: 0,
// every rule start, and every position just past a rule end, clipped
// to the key domain wm. No rule boundary falls strictly inside an
// elementary interval, so rule coverage is constant across each.
func elementaryLows(rules [][]span, d int, wm uint64) []uint32 {
	bounds := []uint64{0}
	for _, r := range rules {
		bounds = append(bounds, r[d].lo)
		if r[d].hi < wm {
			bounds = append(bounds, r[d].hi+1)
		}
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	var lows []uint32
	for _, b := range bounds {
		if n := len(lows); n > 0 && uint64(lows[n-1]) == b {
			continue
		}
		lows = append(lows, uint32(b))
	}
	return lows
}

// intervalRow returns the index of the greatest interval start ≤ k;
// lows is ascending with lows[0] == 0, so the result is always valid.
func intervalRow(lows []uint32, k uint32) int {
	lo, hi := 0, len(lows)-1
	for lo < hi {
		mid := int(uint(lo+hi+1) >> 1)
		if lows[mid] <= k {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// buildInterval lowers a single-field rule set into elementary
// intervals; narrow domains expand into an execDirect dense array.
func (cp *CompiledProgram) buildInterval(t *Table, u *execUnit, rules [][]span) {
	wm := uint64(u.keyMasks[0])
	for _, b32 := range elementaryLows(rules, 0, wm) {
		b := uint64(b32)
		// First rule covering b wins, as in the entry scan.
		slot := int32(-1)
		for ri, r := range rules {
			if r[0].lo <= b && b <= r[0].hi {
				slot = int32(ri)
				break
			}
		}
		if n := len(u.islot); n > 0 && u.islot[n-1] == slot {
			continue // merge with the previous interval
		}
		u.lows = append(u.lows, b32)
		u.islot = append(u.islot, slot)
	}
	if t.KeyWidths[0] > denseRangeBits {
		u.kind = execInterval
		return
	}
	// Narrow domain: expand the intervals into a per-value slot array.
	u.kind = execDirect
	u.dense = make([]int32, wm+1)
	for i, lo := range u.lows {
		hi := wm
		if i+1 < len(u.lows) {
			hi = uint64(u.lows[i+1]) - 1
		}
		for v := uint64(lo); v <= hi; v++ {
			u.dense[v] = u.islot[i] + 1 // slot+1; 0 stays "miss"
		}
	}
	u.lows, u.islot = nil, nil
}

// buildBitmap lowers a multi-field rule set into one bitset-indexed
// structure per dimension: row r of dimension d holds a bit for every
// rule whose dth interval contains the keys mapping to that row. The
// lookup intersects one row per dimension; the lowest set bit of the
// intersection is the first (highest-priority) matching rule.
func (cp *CompiledProgram) buildBitmap(t *Table, u *execUnit, rules [][]span) {
	if len(rules) == 0 {
		u.kind = execScanTernary // always a miss; scan of zero entries
		u.data = nil
		return
	}
	u.kind = execBitmap
	u.bsWords = (len(rules) + 63) / 64
	u.dims = make([]bitmapDim, len(t.KeyFields))
	for d := range u.dims {
		dim := &u.dims[d]
		wm := uint64(u.keyMasks[d])
		if t.KeyWidths[d] <= denseRangeBits {
			// One row per key value.
			dim.rows = make([]uint64, (int(wm)+1)*u.bsWords)
			for ri, r := range rules {
				word, bit := ri/64, uint(ri%64)
				for v := r[d].lo; v <= r[d].hi; v++ {
					dim.rows[int(v)*u.bsWords+word] |= 1 << bit
				}
			}
			continue
		}
		// Wide dimension: one row per elementary interval, resolved by
		// binary search at lookup time.
		dim.lows = elementaryLows(rules, d, wm)
		dim.rows = make([]uint64, len(dim.lows)*u.bsWords)
		for ri, r := range rules {
			word, bit := ri/64, uint(ri%64)
			for row, lo := range dim.lows {
				if r[d].lo <= uint64(lo) && uint64(lo) <= r[d].hi {
					dim.rows[row*u.bsWords+word] |= 1 << bit
				}
			}
		}
	}
}

// prefixEntries reports whether every entry mask is a prefix mask
// within its key width — i.e. its wildcard bits are a contiguous low
// run — which makes each entry a box of per-dimension key intervals.
func prefixEntries(entries []Entry, keyMasks []uint32) bool {
	for ei := range entries {
		for d, wm := range keyMasks {
			inv := wm &^ entries[ei].Mask[d]
			if inv&(inv+1) != 0 {
				return false
			}
		}
	}
	return true
}

// mix64 is the splitmix64 finaliser, scrambling packed keys into hash
// slots.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Name returns the source program's name.
func (cp *CompiledProgram) Name() string { return cp.name }

// Process runs one packet's PHV through the plan. It is bit-identical
// to Program.Process on the source program and performs no heap
// allocation; the PHV supplies the scratch buffer for generic scans.
func (cp *CompiledProgram) Process(phv *PHV) {
	for _, f := range cp.procs {
		f(phv)
	}
}

// foldAlwaysData rewrites an always-run unit's data-bus ops into
// immediates: the unit fires with exactly defData on every packet, so
// OpSetData i is OpSet defData[i] and OpAddData i a saturating
// add-immediate. After folding the op stream references no data slice.
func foldAlwaysData(u *execUnit) {
	folded := false
	for i := range u.action {
		if k := u.action[i].Kind; k == OpSetData || k == OpAddData {
			folded = true
			break
		}
	}
	if !folded {
		return
	}
	ops := append([]Op(nil), u.action...)
	for i := range ops {
		switch ops[i].Kind {
		case OpSetData:
			ops[i] = Op{Kind: OpSet, Dst: ops[i].Dst, Imm: u.defData[ops[i].DataIdx]}
		case OpAddData:
			ops[i] = Op{Kind: opSatAddImm, Dst: ops[i].Dst, A: ops[i].A, Imm: u.defData[ops[i].DataIdx]}
		}
	}
	u.action = ops
}

// gateWrap binds a unit's gateway comparison around its body — one
// typed closure per comparison, no per-packet op switch.
func gateWrap(u *execUnit, body func(*PHV)) func(*PHV) {
	if !u.hasGate {
		return body
	}
	f, v := u.gateField, u.gateVal
	switch u.gateOp {
	case GateEQ:
		return func(p *PHV) {
			if p.Vals[f] == v {
				body(p)
			}
		}
	case GateNE:
		return func(p *PHV) {
			if p.Vals[f] != v {
				body(p)
			}
		}
	case GateGE:
		return func(p *PHV) {
			if p.Vals[f] >= v {
				body(p)
			}
		}
	case GateLE:
		return func(p *PHV) {
			if p.Vals[f] <= v {
				body(p)
			}
		}
	}
	panic("pisa: unreachable gate op") // addTable validated it
}

// setPair is one folded OpSetData: destination field and data index.
type setPair struct {
	dst FieldID
	idx int
}

// dataApplier returns the closure applying ops with hit-dependent
// action data. The ubiquitous all-OpSetData shape (feature loads,
// class/output writebacks) specialises into a bare copy loop.
func dataApplier(ops []Op, regs []*Register) func(*PHV, []int32) {
	allSet := len(ops) > 0
	for i := range ops {
		if ops[i].Kind != OpSetData {
			allSet = false
			break
		}
	}
	if allSet {
		pairs := make([]setPair, len(ops))
		for i, op := range ops {
			pairs[i] = setPair{op.Dst, op.DataIdx}
		}
		if len(pairs) == 1 {
			p0 := pairs[0]
			return func(phv *PHV, data []int32) { phv.Vals[p0.dst] = data[p0.idx] }
		}
		return func(phv *PHV, data []int32) {
			for _, pr := range pairs {
				phv.Vals[pr.dst] = data[pr.idx]
			}
		}
	}
	return func(phv *PHV, data []int32) { runOps(ops, phv, data, regs) }
}

// alwaysApplier returns the closure for a (folded) always-run op
// stream: single-op units — the emitted shape for register RMWs and
// scalar fixups — bind straight to a dedicated closure; longer streams
// run through runOps with no data bus.
func alwaysApplier(ops []Op, regs []*Register) func(*PHV) {
	if len(ops) == 1 {
		op := ops[0]
		switch op.Kind {
		case OpSet:
			return func(p *PHV) { p.Vals[op.Dst] = op.Imm }
		case OpMove:
			return func(p *PHV) { p.Vals[op.Dst] = p.Vals[op.A] }
		case OpAddImm:
			return func(p *PHV) { p.Vals[op.Dst] = p.Vals[op.A] + op.Imm }
		case OpAndImm:
			return func(p *PHV) { p.Vals[op.Dst] = p.Vals[op.A] & op.Imm }
		case OpRegAdd:
			r := regs[op.Reg]
			return func(p *PHV) {
				p.RegRMWs++
				v := r.Get(int(p.Vals[op.A])) + p.Vals[op.B]
				r.Set(int(p.Vals[op.A]), v)
				p.Vals[op.Dst] = v
			}
		case OpRegCntRestart:
			r := regs[op.Reg]
			return func(p *PHV) {
				p.RegRMWs++
				idx := int(p.Vals[op.A])
				v := op.Imm
				if p.Vals[op.B] == 0 {
					v = r.Get(idx) + 1
				}
				r.Set(idx, v)
				p.Vals[op.Dst] = v
			}
		}
	}
	return func(p *PHV) { runOps(ops, p, nil, regs) }
}

// lowerUnit lowers one specialised unit into its straight-line closure
// (gate excluded; seal wraps it). Every lookup constant is captured by
// value, so the hot path reads no execUnit fields and performs no kind
// dispatch.
func (cp *CompiledProgram) lowerUnit(u *execUnit) func(*PHV) {
	switch u.kind {
	case execAlways:
		return alwaysApplier(u.action, cp.regs)
	case execDirect:
		apply := dataApplier(u.action, cp.regs)
		miss := missApplier(u, apply)
		kf, km := u.keyFields[0], u.keyMasks[0]
		dense, dat := u.dense, u.data
		return func(p *PHV) {
			if s := dense[uint32(p.Vals[kf])&km]; s != 0 {
				apply(p, dat[s-1])
			} else {
				miss(p)
			}
		}
	case execHash:
		apply := dataApplier(u.action, cp.regs)
		miss := missApplier(u, apply)
		kfs, kms, shifts := u.keyFields, u.keyMasks, u.shifts
		hkeys, hslot, dat := u.hkeys, u.hslot, u.data
		mask := uint64(len(hkeys) - 1)
		return func(p *PHV) {
			var pk uint64
			for i, f := range kfs {
				pk |= uint64(uint32(p.Vals[f])&kms[i]) << shifts[i]
			}
			for h := mix64(pk) & mask; hslot[h] >= 0; h = (h + 1) & mask {
				if hkeys[h] == pk {
					apply(p, dat[hslot[h]])
					return
				}
			}
			miss(p)
		}
	case execInterval:
		apply := dataApplier(u.action, cp.regs)
		miss := missApplier(u, apply)
		kf, km := u.keyFields[0], u.keyMasks[0]
		lows, islot, dat := u.lows, u.islot, u.data
		return func(p *PHV) {
			if s := islot[intervalRow(lows, uint32(p.Vals[kf])&km)]; s >= 0 {
				apply(p, dat[s])
			} else {
				miss(p)
			}
		}
	case execBitmap:
		apply := dataApplier(u.action, cp.regs)
		miss := missApplier(u, apply)
		kfs, kms := u.keyFields, u.keyMasks
		dims, bsWords, dat := u.dims, u.bsWords, u.data
		return func(p *PHV) {
			var rows [maxBitmapDims][]uint64
			nd := len(dims)
			for d := 0; d < nd; d++ {
				dim := &dims[d]
				k := uint32(p.Vals[kfs[d]]) & kms[d]
				row := int(k)
				if dim.lows != nil {
					row = intervalRow(dim.lows, k)
				}
				rows[d] = dim.rows[row*bsWords : (row+1)*bsWords]
			}
			// Lowest set bit of the intersection = first matching rule.
			for w := 0; w < bsWords; w++ {
				x := rows[0][w]
				for d := 1; d < nd; d++ {
					x &= rows[d][w]
				}
				if x != 0 {
					apply(p, dat[w*64+bits.TrailingZeros64(x)])
					return
				}
			}
			miss(p)
		}
	case execScanExact:
		apply := dataApplier(u.action, cp.regs)
		miss := missApplier(u, apply)
		kfs, kms, entries := u.keyFields, u.keyMasks, u.entries
		return func(p *PHV) {
			key := p.keyBuf(len(kfs))
			for i, f := range kfs {
				key[i] = uint32(p.Vals[f]) & kms[i]
			}
		scanE:
			for ei := range entries {
				e := &entries[ei]
				for i := range key {
					if e.Key[i] != key[i] {
						continue scanE
					}
				}
				apply(p, e.Data)
				return
			}
			miss(p)
		}
	case execScanTernary:
		apply := dataApplier(u.action, cp.regs)
		miss := missApplier(u, apply)
		kfs, kms, entries := u.keyFields, u.keyMasks, u.entries
		return func(p *PHV) {
			key := p.keyBuf(len(kfs))
			for i, f := range kfs {
				key[i] = uint32(p.Vals[f]) & kms[i]
			}
		scanT:
			for ei := range entries {
				e := &entries[ei]
				for i := range key {
					if key[i]&e.Mask[i] != e.Key[i] {
						continue scanT
					}
				}
				apply(p, e.Data)
				return
			}
			miss(p)
		}
	}
	panic("pisa: unknown exec kind")
}

// missApplier returns the unit's miss behaviour: run the action with
// the default data, or nothing.
func missApplier(u *execUnit, apply func(*PHV, []int32)) func(*PHV) {
	if !u.hasDef {
		return func(*PHV) {}
	}
	def := u.defData
	return func(p *PHV) { apply(p, def) }
}
