package pisa

import "fmt"

// Register is a stateful SRAM array: Size cells of Width bits each. On
// Tofino a register supports one read-modify-write per packet;
// Program.Validate enforces that statically (each register may be
// accessed by at most one op per table, and by several tables only when
// their gateways are provably mutually exclusive).
//
// Values are stored sign-extended in int32 but clamped to the cell width
// on write, mirroring the hardware truncation. The paper's footnote that
// "PISA switches do not support 4-bit registers" is enforced: Width must
// be 8, 16 or 32.
type Register struct {
	Name  string
	Width int
	Size  int
	// Init is the value every cell holds before the first packet (and
	// after ResetState) — min-trackers initialise to a +max sentinel.
	Init int32
	vals []int32
}

// NewRegister allocates a zero-initialised register array.
func NewRegister(name string, width, size int) (*Register, error) {
	return NewRegisterInit(name, width, size, 0)
}

// NewRegisterInit allocates a register array whose cells start at (and
// reset to) init, truncated to the cell width.
func NewRegisterInit(name string, width, size int, init int32) (*Register, error) {
	switch width {
	case 8, 16, 32:
	default:
		return nil, fmt.Errorf("pisa: register %q width %d unsupported (PISA registers are 8/16/32-bit)", name, width)
	}
	if size <= 0 {
		return nil, fmt.Errorf("pisa: register %q size %d", name, size)
	}
	r := &Register{Name: name, Width: width, Size: size, Init: init, vals: make([]int32, size)}
	if init != 0 {
		r.Reset()
	}
	return r, nil
}

// Get reads cell idx (0 when out of range, matching hardware OOB reads of
// an unprogrammed cell).
func (r *Register) Get(idx int) int32 {
	if idx < 0 || idx >= r.Size {
		return 0
	}
	return r.vals[idx]
}

// Set writes cell idx, truncating to the register width.
func (r *Register) Set(idx int, v int32) {
	if idx < 0 || idx >= r.Size {
		return
	}
	switch r.Width {
	case 8:
		r.vals[idx] = int32(int8(v))
	case 16:
		r.vals[idx] = int32(int16(v))
	default:
		r.vals[idx] = v
	}
}

// Fill sets every cell to v, truncating to the register width.
func (r *Register) Fill(v int32) {
	for i := range r.vals {
		r.Set(i, v)
	}
}

// Reset restores every cell to the register's initial value.
func (r *Register) Reset() {
	r.Fill(r.Init)
}

// SRAMBits returns the stateful SRAM the register consumes.
func (r *Register) SRAMBits() int { return r.Width * r.Size }
