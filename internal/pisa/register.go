package pisa

import "fmt"

// Register is a stateful SRAM array: Size cells of Width bits each. On
// Tofino a register supports one read-modify-write per packet; the
// compiler is responsible for honouring that (the simulator executes
// whatever ops it is given but Validate counts accesses).
//
// Values are stored sign-extended in int32 but clamped to the cell width
// on write, mirroring the hardware truncation. The paper's footnote that
// "PISA switches do not support 4-bit registers" is enforced: Width must
// be 8, 16 or 32.
type Register struct {
	Name  string
	Width int
	Size  int
	vals  []int32
}

// NewRegister allocates a register array.
func NewRegister(name string, width, size int) (*Register, error) {
	switch width {
	case 8, 16, 32:
	default:
		return nil, fmt.Errorf("pisa: register %q width %d unsupported (PISA registers are 8/16/32-bit)", name, width)
	}
	if size <= 0 {
		return nil, fmt.Errorf("pisa: register %q size %d", name, size)
	}
	return &Register{Name: name, Width: width, Size: size, vals: make([]int32, size)}, nil
}

// Get reads cell idx (0 when out of range, matching hardware OOB reads of
// an unprogrammed cell).
func (r *Register) Get(idx int) int32 {
	if idx < 0 || idx >= r.Size {
		return 0
	}
	return r.vals[idx]
}

// Set writes cell idx, truncating to the register width.
func (r *Register) Set(idx int, v int32) {
	if idx < 0 || idx >= r.Size {
		return
	}
	switch r.Width {
	case 8:
		r.vals[idx] = int32(int8(v))
	case 16:
		r.vals[idx] = int32(int16(v))
	default:
		r.vals[idx] = v
	}
}

// Fill sets every cell to v (used to initialise min-trackers to +max).
func (r *Register) Fill(v int32) {
	for i := range r.vals {
		r.Set(i, v)
	}
}

// Reset zeroes the array.
func (r *Register) Reset() {
	for i := range r.vals {
		r.vals[i] = 0
	}
}

// SRAMBits returns the stateful SRAM the register consumes.
func (r *Register) SRAMBits() int { return r.Width * r.Size }
