package pisa

import "fmt"

// Register is a stateful SRAM array: Size cells of Width bits each. On
// Tofino a register supports one read-modify-write per packet;
// Program.Validate enforces that statically (each register may be
// accessed by at most one op per table, and by several tables only when
// their gateways are provably mutually exclusive).
//
// Values are stored sign-extended in int32 but clamped to the cell width
// on write, mirroring the hardware truncation. The paper's footnote that
// "PISA switches do not support 4-bit registers" is enforced: Width must
// be 8, 16 or 32.
type Register struct {
	Name  string
	Width int
	Size  int
	// Init is the value every cell holds before the first packet (and
	// after ResetState) — min-trackers initialise to a +max sentinel.
	Init int32
	vals []int32

	// Shard-major banked layout, installed by Program.CompactRegisters:
	// under the engine's cell ≡ Hash (mod shards) convention, logical
	// cell idx is stored at (idx mod shards)·bank + idx/shards, so the
	// cells owned by one shard occupy one contiguous bank of the arena
	// instead of being strided across it — workers stop false-sharing
	// cache lines with their neighbours. shards ≤ 1 is the natural
	// (identity) layout.
	shards int
	bank   int // Size / shards
	// Shift/mask fast path when Size and shards are both powers of two
	// (the emitted shape: flow tables are power-of-two sized).
	pow2       bool
	shardMask  int
	shardShift uint // log2(shards)
	bankShift  uint // log2(bank)
}

// NewRegister allocates a zero-initialised register array.
func NewRegister(name string, width, size int) (*Register, error) {
	return NewRegisterInit(name, width, size, 0)
}

// NewRegisterInit allocates a register array whose cells start at (and
// reset to) init, truncated to the cell width.
func NewRegisterInit(name string, width, size int, init int32) (*Register, error) {
	switch width {
	case 8, 16, 32:
	default:
		return nil, fmt.Errorf("pisa: register %q width %d unsupported (PISA registers are 8/16/32-bit)", name, width)
	}
	if size <= 0 {
		return nil, fmt.Errorf("pisa: register %q size %d", name, size)
	}
	r := &Register{Name: name, Width: width, Size: size, Init: init, vals: make([]int32, size)}
	if init != 0 {
		r.Reset()
	}
	return r, nil
}

// pos maps a logical cell index to its arena position under the
// current layout.
func (r *Register) pos(idx int) int {
	if r.shards <= 1 {
		return idx
	}
	if r.pow2 {
		return (idx&r.shardMask)<<r.bankShift | idx>>r.shardShift
	}
	return (idx%r.shards)*r.bank + idx/r.shards
}

// Get reads cell idx (0 when out of range, matching hardware OOB reads of
// an unprogrammed cell).
func (r *Register) Get(idx int) int32 {
	if idx < 0 || idx >= r.Size {
		return 0
	}
	return r.vals[r.pos(idx)]
}

// Set writes cell idx, truncating to the register width.
func (r *Register) Set(idx int, v int32) {
	if idx < 0 || idx >= r.Size {
		return
	}
	switch r.Width {
	case 8:
		r.vals[r.pos(idx)] = int32(int8(v))
	case 16:
		r.vals[r.pos(idx)] = int32(int16(v))
	default:
		r.vals[r.pos(idx)] = v
	}
}

// Fill sets every cell to v, truncating to the register width. The
// banked layout is a bijection, so filling raw positions covers every
// logical cell.
func (r *Register) Fill(v int32) {
	switch r.Width {
	case 8:
		v = int32(int8(v))
	case 16:
		v = int32(int16(v))
	}
	for i := range r.vals {
		r.vals[i] = v
	}
}

// rebase moves the register's contents into dst (len == Size) laid out
// shard-major for the given shard count, and makes dst the backing
// store. shards that do not divide Size fall back to the natural
// layout. Logical contents are preserved: rebase decodes through the
// old layout and re-encodes into the new one.
func (r *Register) rebase(dst []int32, shards int) {
	if len(dst) != r.Size {
		panic("pisa: register rebase size mismatch")
	}
	if shards < 1 || r.Size%shards != 0 {
		shards = 1
	}
	bank := r.Size / shards
	if shards <= 1 {
		for i := 0; i < r.Size; i++ {
			dst[i] = r.vals[r.pos(i)]
		}
	} else {
		for i := 0; i < r.Size; i++ {
			dst[(i%shards)*bank+i/shards] = r.vals[r.pos(i)]
		}
	}
	r.vals = dst
	r.shards, r.bank = shards, bank
	r.pow2 = shards&(shards-1) == 0 && r.Size&(r.Size-1) == 0
	if r.pow2 {
		r.shardMask = shards - 1
		r.shardShift = uint(log2(shards))
		r.bankShift = uint(log2(bank))
	}
}

// log2 returns ⌊log₂ n⌋ for n ≥ 1.
func log2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

// Reset restores every cell to the register's initial value.
func (r *Register) Reset() {
	r.Fill(r.Init)
}

// SRAMBits returns the stateful SRAM the register consumes.
func (r *Register) SRAMBits() int { return r.Width * r.Size }
