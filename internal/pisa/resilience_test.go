package pisa

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/pegasus-idp/pegasus/internal/faultinject"
)

// TestShedPolicyBounds drives the reject-newest shed policy through its
// three bounds — queue depth, recent wait, and context deadline — on a
// one-worker pool wedged behind an injected slow plan, asserting the
// structured ErrOverloaded and the session's Shed counters.
func TestShedPolicyBounds(t *testing.T) {
	defer faultinject.Reset()
	s := NewScheduler(1)
	defer s.Close()
	progA, k, out, class := engineTestProg(t)
	a := s.NewChainEngine("slow", []*Program{progA}, nil, []FieldID{k}, []FieldID{out}, class, 1, ExecCompiled)
	defer a.Close()
	progB, k2, out2, class2 := engineTestProg(t)
	b := s.NewChainEngine("victim", []*Program{progB}, nil, []FieldID{k2}, []FieldID{out2}, class2, 1, ExecCompiled)
	defer b.Close()
	progC, k3, out3, class3 := engineTestProg(t)
	c := s.NewChainEngine("shedder", []*Program{progC}, nil, []FieldID{k3}, []FieldID{out3}, class3, 1, ExecCompiled)
	defer c.Close()

	// Wedge the only worker on session "slow" for 50ms and queue a
	// second session behind it.
	faultinject.Arm(faultinject.SlowSession, "slow", 50*time.Millisecond, 1)
	jobs := []Job{{Hash: 1, In: []int32{7}}}
	pa := a.SubmitBatch(jobs)
	time.Sleep(2 * time.Millisecond) // let the worker dequeue the slow task
	pb := b.SubmitBatch(jobs)

	// Queue bound: "shedder" would find "victim" (at least) already
	// queued at the worker.
	c.SetShedPolicy(ShedPolicy{MaxQueue: 1})
	_, err := c.SubmitBatchCtx(context.Background(), jobs)
	var ov *ErrOverloaded
	if !errors.As(err, &ov) {
		t.Fatalf("queue-bound submission returned %v, want ErrOverloaded", err)
	}
	if ov.Reason != "queue" || ov.Session != "shedder" || ov.Packets != 1 || ov.Depth < 1 {
		t.Fatalf("queue shed fields: %+v", ov)
	}
	if st := c.Stats(); st.Shed != 1 || st.ShedBatches != 1 {
		t.Fatalf("shed counters after queue shed: Shed=%d ShedBatches=%d", st.Shed, st.ShedBatches)
	}

	pa.Wait()
	pb.Wait()

	// "victim" sat ~50ms behind the wedged worker, so its recent-wait
	// EWMA is several milliseconds now.
	if w := b.RecentWait(); w < time.Millisecond {
		t.Fatalf("victim recent wait %v, want >= 1ms after queueing behind the stall", w)
	}

	// Wait bound.
	b.SetShedPolicy(ShedPolicy{MaxWait: 100 * time.Microsecond})
	_, err = b.SubmitBatchCtx(context.Background(), jobs)
	if !errors.As(err, &ov) || ov.Reason != "wait" {
		t.Fatalf("wait-bound submission returned %v, want ErrOverloaded(wait)", err)
	}

	// Deadline bound: a deadline tighter than the expected wait is shed
	// up front even with no explicit policy.
	b.SetShedPolicy(ShedPolicy{})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	_, err = b.RunBatchCtx(ctx, jobs)
	if !errors.As(err, &ov) || ov.Reason != "deadline" {
		t.Fatalf("deadline submission returned %v, want ErrOverloaded(deadline)", err)
	}
	if st := b.Stats(); st.Shed != 2 {
		t.Fatalf("victim shed counter = %d, want 2", st.Shed)
	}

	// The policy is removable: zero value admits again.
	res, err := b.RunBatchCtx(context.Background(), jobs)
	if err != nil || len(res) != 1 {
		t.Fatalf("post-shed admission failed: %v", err)
	}
}

// TestPanicIsolation pins worker panic isolation: an injected plan
// panic poisons ONLY its session — the pool and the co-resident session
// keep serving, and the poisoned session reports a structured
// ErrPoisoned on every later submission.
func TestPanicIsolation(t *testing.T) {
	defer faultinject.Reset()
	s := NewScheduler(2)
	defer s.Close()
	progA, k, out, class := engineTestProg(t)
	a := s.NewChainEngine("doomed", []*Program{progA}, nil, []FieldID{k}, []FieldID{out}, class, 1, ExecCompiled)
	defer a.Close()
	progB, k2, out2, class2 := engineTestProg(t)
	b := s.NewChainEngine("healthy", []*Program{progB}, nil, []FieldID{k2}, []FieldID{out2}, class2, 1, ExecCompiled)
	defer b.Close()

	jobs := make([]Job, 64)
	for i := range jobs {
		jobs[i] = Job{Hash: uint32(i), In: []int32{int32(i % 256)}}
	}
	want := b.RunBatch(jobs)

	faultinject.Arm(faultinject.PanicSession, "doomed", 0, 1)
	_, err := a.RunBatchCtx(context.Background(), jobs)
	var pe *ErrPoisoned
	if !errors.As(err, &pe) {
		t.Fatalf("panicking batch returned %v, want ErrPoisoned", err)
	}
	if pe.Session != "doomed" {
		t.Fatalf("poison names session %q", pe.Session)
	}
	if _, err := a.SubmitBatchCtx(context.Background(), jobs); !errors.As(err, &pe) {
		t.Fatalf("submission on poisoned session returned %v, want ErrPoisoned", err)
	}

	// The pool survived: the co-resident session still classifies
	// bit-identically.
	got, err := b.RunBatchCtx(context.Background(), jobs)
	if err != nil {
		t.Fatalf("healthy session errored after peer panic: %v", err)
	}
	for i := range got {
		if got[i].Class != want[i].Class || got[i].Outs[0] != want[i].Outs[0] {
			t.Fatalf("healthy session diverged at job %d after peer panic", i)
		}
	}
}

// TestWatchdogStallRecovery wedges one worker with an injected stall
// and asserts (a) the watchdog counts the stall episode and (b) another
// session's batch — part of whose work was queued AT the wedged worker
// — completes by stealing, well before the stall clears.
func TestWatchdogStallRecovery(t *testing.T) {
	defer faultinject.Reset()
	s := NewScheduler(2)
	defer s.Close()
	s.StartWatchdog(20 * time.Millisecond)

	progA, k, out, class := engineTestProg(t)
	a := s.NewChainEngine("wedge", []*Program{progA}, nil, []FieldID{k}, []FieldID{out}, class, 1, ExecCompiled)
	defer a.Close()
	progB, k2, out2, class2 := engineTestProg(t)
	b := s.NewChainEngine("bystander", []*Program{progB}, nil, []FieldID{k2}, []FieldID{out2}, class2, 1, ExecCompiled)
	defer b.Close()

	stall := 400 * time.Millisecond
	// One wildcard shot: whichever worker dequeues "wedge"'s task stalls
	// on it. (Keying a worker id here would race — the other worker can
	// win that task, leaving the shot armed to wedge the bystander's own
	// in-flight task, which no peer can steal.)
	faultinject.Arm(faultinject.WorkerStall, "", stall, 1)

	jobs := make([]Job, 128)
	for i := range jobs {
		jobs[i] = Job{Hash: uint32(i), In: []int32{int32(i % 256)}}
	}
	pa := a.SubmitBatch(jobs) // a worker dequeues the shard and stalls on it
	for deadline := time.Now().Add(time.Second); faultinject.Peek(faultinject.WorkerStall, "0") && time.Now().Before(deadline); {
		time.Sleep(time.Millisecond)
	}
	if faultinject.Peek(faultinject.WorkerStall, "0") {
		t.Fatal("stall shot was never consumed — no worker dequeued the wedge task")
	}

	startB := time.Now()
	b.RunBatch(jobs)
	tookB := time.Since(startB)
	if tookB > stall/2 {
		t.Fatalf("bystander batch took %v behind a %v stall — queue was not re-routed", tookB, stall)
	}

	// The watchdog flags the wedged worker within a few ticks.
	deadline := time.Now().Add(stall)
	for s.Stalls() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if s.Stalls() == 0 {
		t.Fatal("watchdog never detected the stalled worker")
	}
	pa.Wait()
}

// TestDrainTimeout pins the bounded drain: a session wedged mid-batch
// reports false at the timeout instead of hanging, and an unbounded
// drain (d <= 0) still waits the batch out.
func TestDrainTimeout(t *testing.T) {
	defer faultinject.Reset()
	s := NewScheduler(2)
	defer s.Close()
	prog, k, out, class := engineTestProg(t)
	e := s.NewChainEngine("drainer", []*Program{prog}, nil, []FieldID{k}, []FieldID{out}, class, 1, ExecCompiled)
	defer e.Close()

	if !e.DrainTimeout(time.Millisecond) {
		t.Fatal("idle engine failed a bounded drain")
	}

	faultinject.Arm(faultinject.SlowSession, "drainer", 60*time.Millisecond, 0)
	p := e.SubmitBatch([]Job{{Hash: 1, In: []int32{3}}})
	if e.DrainTimeout(5 * time.Millisecond) {
		t.Fatal("bounded drain reported quiescent while the batch was wedged")
	}
	if !e.DrainTimeout(0) {
		t.Fatal("unbounded drain returned false")
	}
	p.Wait()
}

// TestSubmitBatchCtxCancelled: an already-cancelled context rejects the
// submission with the context error, before any admission accounting.
func TestSubmitBatchCtxCancelled(t *testing.T) {
	s := NewScheduler(1)
	defer s.Close()
	prog, k, out, class := engineTestProg(t)
	e := s.NewChainEngine("ctx", []*Program{prog}, nil, []FieldID{k}, []FieldID{out}, class, 1, ExecCompiled)
	defer e.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.SubmitBatchCtx(ctx, []Job{{Hash: 1, In: []int32{3}}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled submission returned %v", err)
	}
	if st := e.Stats(); st.Shed != 0 {
		t.Fatalf("context cancellation counted as shed: %d", st.Shed)
	}
}
