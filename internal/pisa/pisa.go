// Package pisa simulates a PISA programmable switch pipeline — the
// hardware substrate the paper deploys Pegasus on (Barefoot Tofino 2).
//
// The simulator implements exactly the mechanisms Pegasus relies on and
// nothing the hardware does not offer: match-action tables with exact or
// ternary (TCAM) matching, a restricted per-action ALU (set/move/add/
// sub/shift/bit ops/compare-select — no multiply, no divide, no floats),
// per-flow stateful register arrays with one read-modify-write per
// packet, and hard per-stage resource budgets (SRAM, TCAM, action data
// bus) plus pipeline-wide limits (stage count, PHV bits). Programs that
// exceed a budget fail validation, which is how the paper's scalability
// story becomes observable in this reproduction.
//
// Programs execute in one of two modes. Program.Process interprets the
// tables directly — the reference semantics, used by RunSwitch and the
// resource/validation paths. CompileProgram lowers a validated program
// into a CompiledProgram, a zero-allocation execution plan that
// specialises every table by match kind (dense direct indexing, hashed
// exact matching, interval binary search for range-coded ternary
// rules, inlined always-tables); the Engine replays traces over
// compiled plans by default and is bit-identical to the interpreter.
package pisa

import (
	"fmt"
)

// Capacity describes the hardware limits of one switch pipeline.
type Capacity struct {
	Stages           int
	SRAMBitsPerStage int
	TCAMBitsPerStage int
	BusBits          int
	PHVBits          int
}

// Tofino2 mirrors the figures quoted in §2 of the paper: 20 MAT stages,
// each with 10 Mb SRAM, 0.5 Mb TCAM and a 1024-bit action data bus, and a
// 4096-bit packet header vector.
var Tofino2 = Capacity{
	Stages:           20,
	SRAMBitsPerStage: 10 * 1024 * 1024,
	TCAMBitsPerStage: 512 * 1024,
	BusBits:          1024,
	PHVBits:          4096,
}

// SmartNIC is a SmartNIC-style capacity profile (an NFP/BlueField-class
// match-action pipeline like the one N3IC targets): microengine stages
// are cheap so the pipeline is long, but per-stage memory is small and
// TCAM nearly absent — the opposite trade-off from Tofino. Registering
// it as an emission target is what makes the compiler's universality
// claim concrete: the same compiled tables validate against a different
// budget.
var SmartNIC = Capacity{
	Stages:           40,
	SRAMBitsPerStage: 2 * 1024 * 1024,
	TCAMBitsPerStage: 64 * 1024,
	BusBits:          512,
	PHVBits:          2048,
}

// Pipes returns the combined budget of n chained pipelines of this
// capacity — the silicon a deployment spanning e.g. the ingress and
// egress pipes of one switch may occupy. Per-stage limits are
// unchanged; only the stage count multiplies.
func (c Capacity) Pipes(n int) Capacity {
	c.Stages *= n
	return c
}

// LineRatePPS is the packet throughput we attribute to the simulated
// switch for Figure 9d. Tofino 2 forwards 12.8 Tb/s; at the ~850-byte
// average packet of the evaluation traces that is ≈1.9e9 packets/s. Any
// compiled program runs at line rate — model size does not change
// dataplane throughput, which is the paper's point.
const LineRatePPS = 1.9e9

// FieldID names a PHV container allocated through a Layout.
type FieldID int

// Layout allocates named PHV fields and tracks their widths. The zero
// value is ready to use.
type Layout struct {
	names  []string
	widths []int
	byName map[string]FieldID
}

// Add allocates a new field of the given bit width and returns its ID.
// Duplicate names are rejected.
func (l *Layout) Add(name string, width int) (FieldID, error) {
	if width <= 0 || width > 32 {
		return 0, fmt.Errorf("pisa: field %q width %d out of range [1,32]", name, width)
	}
	if l.byName == nil {
		l.byName = map[string]FieldID{}
	}
	if _, dup := l.byName[name]; dup {
		return 0, fmt.Errorf("pisa: duplicate field %q", name)
	}
	id := FieldID(len(l.names))
	l.names = append(l.names, name)
	l.widths = append(l.widths, width)
	l.byName[name] = id
	return id, nil
}

// MustAdd is Add that panics on error, for compiler-internal layouts.
func (l *Layout) MustAdd(name string, width int) FieldID {
	id, err := l.Add(name, width)
	if err != nil {
		panic(err)
	}
	return id
}

// Lookup returns the field ID for name.
func (l *Layout) Lookup(name string) (FieldID, bool) {
	id, ok := l.byName[name]
	return id, ok
}

// Name returns the name of field id.
func (l *Layout) Name(id FieldID) string { return l.names[id] }

// Width returns the bit width of field id.
func (l *Layout) Width(id FieldID) int { return l.widths[id] }

// NumFields returns the number of allocated fields.
func (l *Layout) NumFields() int { return len(l.names) }

// TotalBits returns the PHV bits consumed by all fields.
func (l *Layout) TotalBits() int {
	n := 0
	for _, w := range l.widths {
		n += w
	}
	return n
}

// PHV is one packet's header vector: the values of every layout field.
// A PHV also carries a small reusable key scratch buffer so table
// lookups allocate nothing per packet; PHVs are therefore cheap to keep
// per goroutine but must not be shared between concurrent goroutines.
type PHV struct {
	Vals []int32
	// RegRMWs counts register read-modify-writes executed through this
	// PHV (every OpReg* occupies a register's one RMW slot for the
	// packet, pure loads included). Each PHV is single-goroutine, so the
	// counter needs no atomics; engines snapshot it around a shard's run
	// to attribute the stateful work per session.
	RegRMWs uint64
	key     []uint32 // lookup scratch, grown on demand
}

// keyBuf returns an n-element scratch slice for assembling a match key.
func (p *PHV) keyBuf(n int) []uint32 {
	if cap(p.key) < n {
		p.key = make([]uint32, n)
	}
	return p.key[:n]
}

// NewPHV returns a zeroed PHV for the layout.
func (l *Layout) NewPHV() *PHV { return &PHV{Vals: make([]int32, len(l.names))} }

// Reset zeroes all fields for reuse across packets.
func (p *PHV) Reset() {
	for i := range p.Vals {
		p.Vals[i] = 0
	}
}

// Get returns the value of field id.
func (p *PHV) Get(id FieldID) int32 { return p.Vals[id] }

// Set assigns the value of field id.
func (p *PHV) Set(id FieldID, v int32) { p.Vals[id] = v }
