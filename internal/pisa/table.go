package pisa

import (
	"fmt"

	"github.com/pegasus-idp/pegasus/internal/fixed"
)

// MatchKind selects the matching hardware for a table.
type MatchKind int

// Match kinds. Range matching is realised as ternary after consecutive
// range coding, exactly as on the real hardware (§6.1).
const (
	MatchExact MatchKind = iota
	MatchTernary
	// MatchNone is a keyless "always" table that just runs its default
	// action; used for SumReduce adds, argmax chains and register ops.
	MatchNone
)

func (k MatchKind) String() string {
	switch k {
	case MatchExact:
		return "exact"
	case MatchTernary:
		return "ternary"
	case MatchNone:
		return "always"
	}
	return fmt.Sprintf("MatchKind(%d)", int(k))
}

// OpKind is one ALU micro-operation kind. Only operations PISA supports
// are available: no multiplication, division or floating point.
type OpKind int

// ALU operations. Operand conventions per op are documented on Op.
const (
	OpSet      OpKind = iota // dst = Imm
	OpMove                   // dst = phv[A]
	OpAdd                    // dst = phv[A] + phv[B] (wrapping)
	OpSatAdd                 // dst = phv[A] +sat phv[B]
	OpSub                    // dst = phv[A] - phv[B]
	OpMin                    // dst = min(phv[A], phv[B])
	OpMax                    // dst = max(phv[A], phv[B])
	OpShl                    // dst = phv[A] << Imm
	OpShr                    // dst = phv[A] >> Imm (arithmetic)
	OpAnd                    // dst = phv[A] & phv[B]
	OpOr                     // dst = phv[A] | phv[B]
	OpXor                    // dst = phv[A] ^ phv[B]
	OpAndImm                 // dst = phv[A] & Imm
	OpAddImm                 // dst = phv[A] + Imm
	OpSetData                // dst = data[DataIdx]
	OpAddData                // dst = phv[A] +sat data[DataIdx]
	OpSelGE                  // if phv[A] >= phv[B] { dst = Imm }
	OpSelEQI                 // if phv[A] == Imm { dst = phv[B] }
	OpRegLoad                // dst = reg[Reg][phv[A]]
	OpRegStore               // reg[Reg][phv[A]] = phv[B]
	OpRegMax                 // reg[Reg][phv[A]] = max(reg, phv[B]); dst = new value
	OpRegMin                 // reg[Reg][phv[A]] = min(reg, phv[B]); dst = new value
	OpRegAdd                 // reg[Reg][phv[A]] += phv[B]; dst = new value
	OpRegExch                // dst = old reg[Reg][phv[A]]; reg[Reg][phv[A]] = phv[B] (last-timestamp tracker)
	// OpRegCntRestart is a windowed counter with predicated restart:
	// reg[Reg][phv[A]] = phv[B] != 0 ? Imm : reg[Reg][phv[A]] + 1, with
	// dst = the new value. Tofino stateful ALUs support exactly this
	// shape (a RegisterAction with a condition selecting between two
	// update arms), and it is what lets idle-timeout flow eviction fold
	// into the extraction prelude's existing counter RMW instead of
	// needing a second register access.
	OpRegCntRestart
)

// opSatAddImm is a plan-internal opcode: dst = phv[A] +sat Imm. It is
// what OpAddData folds into when CompileProgram constant-folds the
// action data of an always-run table (the data slice is fixed, so the
// per-packet bus fetch becomes an immediate). Builders never emit it
// and it never reaches the P4 renderer — it exists only inside compiled
// plans.
const opSatAddImm OpKind = -1

// Op is one micro-operation of an action program.
type Op struct {
	Kind    OpKind
	Dst     FieldID
	A, B    FieldID
	Imm     int32
	DataIdx int
	Reg     int // register index within Program.Registers
}

// regAccess returns the register index the op reads or modifies, or -1
// for stateless ops. Every register op — including the pure load —
// occupies the register's one read-modify-write slot for the packet.
func (op *Op) regAccess() int {
	switch op.Kind {
	case OpRegLoad, OpRegStore, OpRegMax, OpRegMin, OpRegAdd, OpRegExch, OpRegCntRestart:
		return op.Reg
	}
	return -1
}

// writesDst reports whether the op writes its Dst field (OpRegStore is
// the only op without a PHV destination).
func (op *Op) writesDst() bool { return op.Kind != OpRegStore }

// Entry is one table entry. For exact matching Mask must be nil and Key
// compared verbatim; for ternary matching Mask selects the cared bits.
// Data is the entry's action data (fetched over the action data bus).
type Entry struct {
	Key  []uint32
	Mask []uint32
	Data []int32
}

// GateOp is a gateway comparison, parsed once at construction so the
// per-packet check is a typed switch instead of a string compare.
type GateOp uint8

// Gateway comparisons. The zero value is deliberately not a valid op,
// preserving the old fail-fast behaviour: a Gate built without setting
// Op panics on first use instead of silently comparing.
const (
	GateEQ GateOp = iota + 1 // ==
	GateNE                   // !=
	GateGE                   // >=
	GateLE                   // <=
)

// ParseGateOp converts the builder-facing string form ("==", "!=",
// ">=", "<=") into the typed op.
func ParseGateOp(s string) (GateOp, error) {
	switch s {
	case "==":
		return GateEQ, nil
	case "!=":
		return GateNE, nil
	case ">=":
		return GateGE, nil
	case "<=":
		return GateLE, nil
	}
	return 0, fmt.Errorf("pisa: unknown gate op %q", s)
}

// String returns the source form of the comparison, used by the P4
// renderer and builders.
func (op GateOp) String() string {
	switch op {
	case GateEQ:
		return "=="
	case GateNE:
		return "!="
	case GateGE:
		return ">="
	case GateLE:
		return "<="
	}
	return fmt.Sprintf("GateOp(%d)", int(op))
}

// Gate optionally predicates a table on a PHV field (PISA gateway).
type Gate struct {
	Field FieldID
	Op    GateOp
	Value int32
}

func (g *Gate) pass(phv *PHV) bool {
	v := phv.Get(g.Field)
	switch g.Op {
	case GateEQ:
		return v == g.Value
	case GateNE:
		return v != g.Value
	case GateGE:
		return v >= g.Value
	case GateLE:
		return v <= g.Value
	}
	panic(fmt.Sprintf("pisa: unknown gate op %d", g.Op))
}

// Table is one match-action table.
type Table struct {
	Name string
	Kind MatchKind
	// KeyFields are the PHV fields concatenated into the lookup key.
	KeyFields []FieldID
	// KeyWidths gives the match width of each key field (may be narrower
	// than the container).
	KeyWidths []int
	Entries   []Entry
	// Action is the action program run on hit (and on miss when
	// DefaultData is non-nil, with that data).
	Action []Op
	// DefaultData, when non-nil, runs Action with this data on miss (or
	// always, for MatchNone tables).
	DefaultData []int32
	// Gate, when non-nil, predicates the whole table.
	Gate *Gate
	// DataWidthBits is the action-data width fetched per hit; it is
	// charged against the stage's action data bus.
	DataWidthBits int

	// masks caches the per-field width masks (prepare); lookup falls
	// back to computing them inline for tables that never went through
	// Program.Place, so construction-by-literal keeps working.
	masks []uint32
}

// prepare precomputes the per-field width masks. Program.Place calls it
// for every placed table; it is idempotent.
func (t *Table) prepare() {
	if t.masks != nil || len(t.KeyWidths) == 0 {
		return
	}
	masks := make([]uint32, len(t.KeyWidths))
	for i, w := range t.KeyWidths {
		masks[i] = widthMask(w)
	}
	t.masks = masks
}

// loadKey fills key (caller scratch, len(t.KeyFields)) with the masked
// PHV values of the table's key fields.
func (t *Table) loadKey(phv *PHV, key []uint32) {
	if t.masks != nil {
		for i, f := range t.KeyFields {
			key[i] = uint32(phv.Get(f)) & t.masks[i]
		}
		return
	}
	for i, f := range t.KeyFields {
		key[i] = uint32(phv.Get(f)) & widthMask(t.KeyWidths[i])
	}
}

// lookup returns the action data for phv, or nil when the table misses
// and has no default. The key is assembled in the PHV's scratch buffer,
// so steady-state lookups perform no heap allocation.
func (t *Table) lookup(phv *PHV) ([]int32, bool) {
	switch t.Kind {
	case MatchNone:
		return t.DefaultData, t.DefaultData != nil
	case MatchExact:
		key := phv.keyBuf(len(t.KeyFields))
		t.loadKey(phv, key)
		for ei := range t.Entries {
			e := &t.Entries[ei]
			hit := true
			for i := range key {
				if e.Key[i] != key[i] {
					hit = false
					break
				}
			}
			if hit {
				return e.Data, true
			}
		}
	case MatchTernary:
		key := phv.keyBuf(len(t.KeyFields))
		t.loadKey(phv, key)
		for ei := range t.Entries {
			e := &t.Entries[ei]
			hit := true
			for i := range key {
				if key[i]&e.Mask[i] != e.Key[i] {
					hit = false
					break
				}
			}
			if hit {
				return e.Data, true
			}
		}
	}
	return t.DefaultData, t.DefaultData != nil
}

func widthMask(w int) uint32 {
	if w >= 32 {
		return ^uint32(0)
	}
	return uint32(1)<<w - 1
}

// apply executes the table on phv, returning whether its action ran.
func (t *Table) apply(phv *PHV, regs []*Register) bool {
	if t.Gate != nil && !t.Gate.pass(phv) {
		return false
	}
	data, ok := t.lookup(phv)
	if !ok {
		return false
	}
	runOps(t.Action, phv, data, regs)
	return true
}

func runOps(ops []Op, phv *PHV, data []int32, regs []*Register) {
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case OpSet:
			phv.Set(op.Dst, op.Imm)
		case OpMove:
			phv.Set(op.Dst, phv.Get(op.A))
		case OpAdd:
			phv.Set(op.Dst, phv.Get(op.A)+phv.Get(op.B))
		case OpSatAdd:
			phv.Set(op.Dst, fixed.SatAdd32(phv.Get(op.A), phv.Get(op.B)))
		case OpSub:
			phv.Set(op.Dst, phv.Get(op.A)-phv.Get(op.B))
		case OpMin:
			a, b := phv.Get(op.A), phv.Get(op.B)
			if b < a {
				a = b
			}
			phv.Set(op.Dst, a)
		case OpMax:
			a, b := phv.Get(op.A), phv.Get(op.B)
			if b > a {
				a = b
			}
			phv.Set(op.Dst, a)
		case OpShl:
			phv.Set(op.Dst, phv.Get(op.A)<<uint(op.Imm))
		case OpShr:
			phv.Set(op.Dst, phv.Get(op.A)>>uint(op.Imm))
		case OpAnd:
			phv.Set(op.Dst, phv.Get(op.A)&phv.Get(op.B))
		case OpOr:
			phv.Set(op.Dst, phv.Get(op.A)|phv.Get(op.B))
		case OpXor:
			phv.Set(op.Dst, phv.Get(op.A)^phv.Get(op.B))
		case OpAndImm:
			phv.Set(op.Dst, phv.Get(op.A)&op.Imm)
		case OpAddImm:
			phv.Set(op.Dst, phv.Get(op.A)+op.Imm)
		case OpSetData:
			phv.Set(op.Dst, data[op.DataIdx])
		case OpAddData:
			phv.Set(op.Dst, fixed.SatAdd32(phv.Get(op.A), data[op.DataIdx]))
		case opSatAddImm:
			phv.Set(op.Dst, fixed.SatAdd32(phv.Get(op.A), op.Imm))
		case OpSelGE:
			if phv.Get(op.A) >= phv.Get(op.B) {
				phv.Set(op.Dst, op.Imm)
			}
		case OpSelEQI:
			if phv.Get(op.A) == op.Imm {
				phv.Set(op.Dst, phv.Get(op.B))
			}
		case OpRegLoad:
			phv.RegRMWs++
			phv.Set(op.Dst, regs[op.Reg].Get(int(phv.Get(op.A))))
		case OpRegStore:
			phv.RegRMWs++
			regs[op.Reg].Set(int(phv.Get(op.A)), phv.Get(op.B))
		case OpRegMax:
			phv.RegRMWs++
			r := regs[op.Reg]
			idx := int(phv.Get(op.A))
			v := r.Get(idx)
			if phv.Get(op.B) > v {
				v = phv.Get(op.B)
			}
			r.Set(idx, v)
			phv.Set(op.Dst, v)
		case OpRegMin:
			phv.RegRMWs++
			r := regs[op.Reg]
			idx := int(phv.Get(op.A))
			v := r.Get(idx)
			if phv.Get(op.B) < v {
				v = phv.Get(op.B)
			}
			r.Set(idx, v)
			phv.Set(op.Dst, v)
		case OpRegAdd:
			phv.RegRMWs++
			r := regs[op.Reg]
			idx := int(phv.Get(op.A))
			v := r.Get(idx) + phv.Get(op.B)
			r.Set(idx, v)
			phv.Set(op.Dst, v)
		case OpRegExch:
			phv.RegRMWs++
			r := regs[op.Reg]
			idx := int(phv.Get(op.A))
			old := r.Get(idx)
			r.Set(idx, phv.Get(op.B))
			phv.Set(op.Dst, old)
		case OpRegCntRestart:
			phv.RegRMWs++
			r := regs[op.Reg]
			idx := int(phv.Get(op.A))
			v := op.Imm
			if phv.Get(op.B) == 0 {
				v = r.Get(idx) + 1
			}
			r.Set(idx, v)
			phv.Set(op.Dst, v)
		default:
			panic(fmt.Sprintf("pisa: unknown op kind %d", op.Kind))
		}
	}
}

// KeyBits returns the total match key width of the table.
func (t *Table) KeyBits() int {
	n := 0
	for _, w := range t.KeyWidths {
		n += w
	}
	return n
}

// SRAMBits returns the SRAM the table occupies: exact tables store key +
// action data per entry; ternary tables keep keys in TCAM but their
// action data still lives in SRAM.
func (t *Table) SRAMBits() int {
	switch t.Kind {
	case MatchExact:
		return len(t.Entries) * (t.KeyBits() + t.DataWidthBits)
	case MatchTernary:
		return len(t.Entries) * t.DataWidthBits
	}
	return 0
}

// TCAMBits returns the TCAM the table occupies (value+mask per entry).
func (t *Table) TCAMBits() int {
	if t.Kind != MatchTernary {
		return 0
	}
	return len(t.Entries) * 2 * t.KeyBits()
}
