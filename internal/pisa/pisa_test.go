package pisa

import (
	"strings"
	"testing"
)

func TestLayoutAddLookup(t *testing.T) {
	var l Layout
	a, err := l.Add("len", 16)
	if err != nil {
		t.Fatal(err)
	}
	b := l.MustAdd("ipd", 16)
	if a == b {
		t.Fatal("distinct fields share ID")
	}
	if _, err := l.Add("len", 8); err == nil {
		t.Fatal("want duplicate error")
	}
	if _, err := l.Add("bad", 0); err == nil {
		t.Fatal("want width error")
	}
	if _, err := l.Add("bad", 40); err == nil {
		t.Fatal("want width error")
	}
	if id, ok := l.Lookup("ipd"); !ok || id != b {
		t.Fatal("Lookup failed")
	}
	if l.Name(a) != "len" || l.Width(a) != 16 {
		t.Fatal("Name/Width")
	}
	if l.TotalBits() != 32 || l.NumFields() != 2 {
		t.Fatal("TotalBits/NumFields")
	}
}

func TestPHVSetGetReset(t *testing.T) {
	var l Layout
	f := l.MustAdd("x", 8)
	phv := l.NewPHV()
	phv.Set(f, 42)
	if phv.Get(f) != 42 {
		t.Fatal("Set/Get")
	}
	phv.Reset()
	if phv.Get(f) != 0 {
		t.Fatal("Reset")
	}
}

func TestExactTableHitMissDefault(t *testing.T) {
	var l Layout
	k := l.MustAdd("key", 8)
	out := l.MustAdd("out", 16)
	tbl := &Table{
		Name: "t", Kind: MatchExact,
		KeyFields: []FieldID{k}, KeyWidths: []int{8},
		Entries: []Entry{
			{Key: []uint32{5}, Data: []int32{100}},
			{Key: []uint32{9}, Data: []int32{200}},
		},
		Action:        []Op{{Kind: OpSetData, Dst: out, DataIdx: 0}},
		DataWidthBits: 16,
	}
	phv := l.NewPHV()
	phv.Set(k, 9)
	if !tbl.apply(phv, nil) || phv.Get(out) != 200 {
		t.Fatalf("hit: out = %d", phv.Get(out))
	}
	phv.Reset()
	phv.Set(k, 7)
	if tbl.apply(phv, nil) {
		t.Fatal("miss without default should not run action")
	}
	tbl.DefaultData = []int32{-1}
	if !tbl.apply(phv, nil) || phv.Get(out) != -1 {
		t.Fatal("default data not applied")
	}
}

func TestExactTableMasksKeyToWidth(t *testing.T) {
	var l Layout
	k := l.MustAdd("key", 32)
	out := l.MustAdd("out", 8)
	tbl := &Table{
		Name: "t", Kind: MatchExact,
		KeyFields: []FieldID{k}, KeyWidths: []int{4},
		Entries:       []Entry{{Key: []uint32{0xA}, Data: []int32{1}}},
		Action:        []Op{{Kind: OpSetData, Dst: out, DataIdx: 0}},
		DataWidthBits: 8,
	}
	phv := l.NewPHV()
	phv.Set(k, 0xFA) // low 4 bits = 0xA
	if !tbl.apply(phv, nil) || phv.Get(out) != 1 {
		t.Fatal("key not masked to declared width")
	}
}

func TestTernaryTableFirstMatch(t *testing.T) {
	var l Layout
	k := l.MustAdd("key", 8)
	out := l.MustAdd("out", 8)
	tbl := &Table{
		Name: "t", Kind: MatchTernary,
		KeyFields: []FieldID{k}, KeyWidths: []int{8},
		Entries: []Entry{
			{Key: []uint32{0x00}, Mask: []uint32{0xC0}, Data: []int32{1}}, // 00xxxxxx → [0,63]
			{Key: []uint32{0x00}, Mask: []uint32{0x00}, Data: []int32{2}}, // catch-all
		},
		Action:        []Op{{Kind: OpSetData, Dst: out, DataIdx: 0}},
		DataWidthBits: 8,
	}
	phv := l.NewPHV()
	phv.Set(k, 42)
	tbl.apply(phv, nil)
	if phv.Get(out) != 1 {
		t.Fatalf("out = %d, want 1 (first match)", phv.Get(out))
	}
	phv.Set(k, 200)
	tbl.apply(phv, nil)
	if phv.Get(out) != 2 {
		t.Fatalf("out = %d, want 2 (catch-all)", phv.Get(out))
	}
}

func TestGate(t *testing.T) {
	var l Layout
	en := l.MustAdd("enable", 1)
	out := l.MustAdd("out", 8)
	tbl := &Table{
		Name: "t", Kind: MatchNone,
		DefaultData: []int32{7},
		Action:      []Op{{Kind: OpSetData, Dst: out, DataIdx: 0}},
		Gate:        &Gate{Field: en, Op: GateEQ, Value: 1},
	}
	phv := l.NewPHV()
	if tbl.apply(phv, nil) {
		t.Fatal("gate should block")
	}
	phv.Set(en, 1)
	if !tbl.apply(phv, nil) || phv.Get(out) != 7 {
		t.Fatal("gate should pass")
	}
	for _, s := range []string{"!=", ">=", "<="} {
		op, err := ParseGateOp(s)
		if err != nil {
			t.Fatal(err)
		}
		if op.String() != s {
			t.Fatalf("GateOp round-trip: %q -> %q", s, op.String())
		}
		g := &Gate{Field: en, Op: op, Value: 1}
		g.pass(phv) // must not panic
	}
	if _, err := ParseGateOp("<"); err == nil {
		t.Fatal("ParseGateOp accepted unknown op")
	}
}

func TestALUOps(t *testing.T) {
	var l Layout
	a := l.MustAdd("a", 32)
	b := l.MustAdd("b", 32)
	d := l.MustAdd("d", 32)
	phv := l.NewPHV()
	run := func(op Op) int32 {
		runOps([]Op{op}, phv, []int32{55, 66}, nil)
		return phv.Get(d)
	}
	phv.Set(a, 12)
	phv.Set(b, 5)
	if run(Op{Kind: OpSet, Dst: d, Imm: 3}) != 3 {
		t.Fatal("OpSet")
	}
	if run(Op{Kind: OpMove, Dst: d, A: a}) != 12 {
		t.Fatal("OpMove")
	}
	if run(Op{Kind: OpAdd, Dst: d, A: a, B: b}) != 17 {
		t.Fatal("OpAdd")
	}
	if run(Op{Kind: OpSatAdd, Dst: d, A: a, B: b}) != 17 {
		t.Fatal("OpSatAdd")
	}
	if run(Op{Kind: OpSub, Dst: d, A: a, B: b}) != 7 {
		t.Fatal("OpSub")
	}
	if run(Op{Kind: OpMin, Dst: d, A: a, B: b}) != 5 {
		t.Fatal("OpMin")
	}
	if run(Op{Kind: OpMax, Dst: d, A: a, B: b}) != 12 {
		t.Fatal("OpMax")
	}
	if run(Op{Kind: OpShl, Dst: d, A: a, Imm: 2}) != 48 {
		t.Fatal("OpShl")
	}
	if run(Op{Kind: OpShr, Dst: d, A: a, Imm: 2}) != 3 {
		t.Fatal("OpShr")
	}
	if run(Op{Kind: OpAnd, Dst: d, A: a, B: b}) != 4 {
		t.Fatal("OpAnd")
	}
	if run(Op{Kind: OpOr, Dst: d, A: a, B: b}) != 13 {
		t.Fatal("OpOr")
	}
	if run(Op{Kind: OpXor, Dst: d, A: a, B: b}) != 9 {
		t.Fatal("OpXor")
	}
	if run(Op{Kind: OpAndImm, Dst: d, A: a, Imm: 8}) != 8 {
		t.Fatal("OpAndImm")
	}
	if run(Op{Kind: OpAddImm, Dst: d, A: a, Imm: -2}) != 10 {
		t.Fatal("OpAddImm")
	}
	if run(Op{Kind: OpSetData, Dst: d, DataIdx: 1}) != 66 {
		t.Fatal("OpSetData")
	}
	if run(Op{Kind: OpAddData, Dst: d, A: a, DataIdx: 0}) != 67 {
		t.Fatal("OpAddData")
	}
	phv.Set(d, -9)
	if run(Op{Kind: OpSelGE, Dst: d, A: a, B: b, Imm: 99}) != 99 {
		t.Fatal("OpSelGE taken")
	}
	phv.Set(d, -9)
	phv.Set(a, 1)
	if run(Op{Kind: OpSelGE, Dst: d, A: a, B: b, Imm: 99}) != -9 {
		t.Fatal("OpSelGE not taken")
	}
	phv.Set(a, 5)
	if run(Op{Kind: OpSelEQI, Dst: d, A: a, B: b, Imm: 5}) != 5 {
		t.Fatal("OpSelEQI taken")
	}
}

func TestRegisterWidthsAndTruncation(t *testing.T) {
	if _, err := NewRegister("r", 4, 8); err == nil {
		t.Fatal("4-bit registers must be rejected (paper footnote)")
	}
	if _, err := NewRegister("r", 8, 0); err == nil {
		t.Fatal("want size error")
	}
	r, err := NewRegister("r", 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	r.Set(0, 200) // truncates to int8: 200 = 0xC8 → -56
	if r.Get(0) != -56 {
		t.Fatalf("8-bit truncation: %d", r.Get(0))
	}
	r16, _ := NewRegister("r16", 16, 2)
	r16.Set(1, 70000) // 70000 mod 2^16 = 4464
	if r16.Get(1) != 4464 {
		t.Fatalf("16-bit truncation: %d", r16.Get(1))
	}
	// OOB semantics.
	if r.Get(-1) != 0 || r.Get(99) != 0 {
		t.Fatal("OOB read should be 0")
	}
	r.Set(-1, 5) // must not panic
	if r.SRAMBits() != 32 {
		t.Fatalf("SRAMBits = %d, want 32", r.SRAMBits())
	}
	r.Fill(3)
	if r.Get(2) != 3 {
		t.Fatal("Fill")
	}
	r.Reset()
	if r.Get(2) != 0 {
		t.Fatal("Reset")
	}
}

func TestRegisterOps(t *testing.T) {
	var l Layout
	idx := l.MustAdd("idx", 16)
	v := l.MustAdd("v", 32)
	d := l.MustAdd("d", 32)
	reg, _ := NewRegister("state", 32, 8)
	regs := []*Register{reg}
	phv := l.NewPHV()
	phv.Set(idx, 3)
	phv.Set(v, 10)
	runOps([]Op{{Kind: OpRegStore, Reg: 0, A: idx, B: v}}, phv, nil, regs)
	if reg.Get(3) != 10 {
		t.Fatal("OpRegStore")
	}
	runOps([]Op{{Kind: OpRegLoad, Reg: 0, Dst: d, A: idx}}, phv, nil, regs)
	if phv.Get(d) != 10 {
		t.Fatal("OpRegLoad")
	}
	phv.Set(v, 25)
	runOps([]Op{{Kind: OpRegMax, Reg: 0, Dst: d, A: idx, B: v}}, phv, nil, regs)
	if reg.Get(3) != 25 || phv.Get(d) != 25 {
		t.Fatal("OpRegMax")
	}
	phv.Set(v, 7)
	runOps([]Op{{Kind: OpRegMin, Reg: 0, Dst: d, A: idx, B: v}}, phv, nil, regs)
	if reg.Get(3) != 7 {
		t.Fatal("OpRegMin")
	}
	runOps([]Op{{Kind: OpRegAdd, Reg: 0, Dst: d, A: idx, B: v}}, phv, nil, regs)
	if reg.Get(3) != 14 || phv.Get(d) != 14 {
		t.Fatal("OpRegAdd")
	}
}

func TestResourcesAccounting(t *testing.T) {
	var l Layout
	k := l.MustAdd("k", 8)
	o := l.MustAdd("o", 8)
	prog := NewProgram("test", &l, Tofino2)
	exact := &Table{Name: "e", Kind: MatchExact, KeyFields: []FieldID{k}, KeyWidths: []int{8},
		Entries:       make([]Entry, 10),
		Action:        []Op{{Kind: OpSetData, Dst: o}},
		DataWidthBits: 16}
	tern := &Table{Name: "t", Kind: MatchTernary, KeyFields: []FieldID{k}, KeyWidths: []int{8},
		Entries:       make([]Entry, 4),
		Action:        []Op{{Kind: OpSetData, Dst: o}},
		DataWidthBits: 32}
	prog.Place(0, exact)
	prog.Place(1, tern)
	reg, _ := NewRegister("r", 16, 100)
	prog.AddRegister(reg)
	res := prog.Resources()
	wantExactSRAM := 10 * (8 + 16)
	wantTernSRAM := 4 * 32
	wantTCAM := 4 * 2 * 8
	wantReg := 16 * 100
	if res.PerStage[0].SRAMBits != wantExactSRAM {
		t.Fatalf("stage0 SRAM = %d, want %d", res.PerStage[0].SRAMBits, wantExactSRAM)
	}
	if res.PerStage[1].SRAMBits != wantTernSRAM || res.PerStage[1].TCAMBits != wantTCAM {
		t.Fatalf("stage1 = %+v", res.PerStage[1])
	}
	if res.SRAMBits != wantExactSRAM+wantTernSRAM+wantReg {
		t.Fatalf("total SRAM = %d", res.SRAMBits)
	}
	if res.RegBits != wantReg {
		t.Fatalf("RegBits = %d", res.RegBits)
	}
	if res.PeakBusBits != 32 {
		t.Fatalf("PeakBusBits = %d, want 32", res.PeakBusBits)
	}
	if res.TCAMFrac(Tofino2) <= 0 || res.SRAMFrac(Tofino2) <= 0 || res.BusFrac(Tofino2) <= 0 {
		t.Fatal("fractions must be positive")
	}
	if !strings.Contains(prog.Summary(), "program") {
		t.Fatal("Summary")
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	var l Layout
	k := l.MustAdd("k", 8)
	o := l.MustAdd("o", 8)

	// Too many stages.
	tiny := Capacity{Stages: 1, SRAMBitsPerStage: 1 << 20, TCAMBitsPerStage: 1 << 18, BusBits: 1024, PHVBits: 4096}
	prog := NewProgram("overflow", &l, tiny)
	prog.Place(0, &Table{Name: "a", Kind: MatchNone})
	prog.Place(1, &Table{Name: "b", Kind: MatchNone})
	if err := prog.Validate(); err == nil || !strings.Contains(err.Error(), "stages") {
		t.Fatalf("want stage error, got %v", err)
	}

	// SRAM overflow.
	prog2 := NewProgram("sram", &l, Capacity{Stages: 4, SRAMBitsPerStage: 100, TCAMBitsPerStage: 1 << 18, BusBits: 1024, PHVBits: 4096})
	prog2.Place(0, &Table{Name: "big", Kind: MatchExact, KeyFields: []FieldID{k}, KeyWidths: []int{8},
		Entries: make([]Entry, 50), DataWidthBits: 8})
	if err := prog2.Validate(); err == nil || !strings.Contains(err.Error(), "SRAM") {
		t.Fatalf("want SRAM error, got %v", err)
	}

	// Bus overflow.
	prog3 := NewProgram("bus", &l, Capacity{Stages: 4, SRAMBitsPerStage: 1 << 20, TCAMBitsPerStage: 1 << 18, BusBits: 16, PHVBits: 4096})
	prog3.Place(0, &Table{Name: "wide", Kind: MatchNone, DataWidthBits: 64})
	if err := prog3.Validate(); err == nil || !strings.Contains(err.Error(), "bus") {
		t.Fatalf("want bus error, got %v", err)
	}

	// Write conflict within a stage.
	prog4 := NewProgram("conflict", &l, Tofino2)
	prog4.Place(0, &Table{Name: "w1", Kind: MatchNone, DefaultData: []int32{1},
		Action: []Op{{Kind: OpSetData, Dst: o, DataIdx: 0}}})
	prog4.Place(0, &Table{Name: "w2", Kind: MatchNone, DefaultData: []int32{2},
		Action: []Op{{Kind: OpSetData, Dst: o, DataIdx: 0}}})
	if err := prog4.Validate(); err == nil || !strings.Contains(err.Error(), "both write") {
		t.Fatalf("want write-conflict error, got %v", err)
	}

	// Valid program passes.
	prog5 := NewProgram("ok", &l, Tofino2)
	prog5.Place(0, &Table{Name: "t", Kind: MatchExact, KeyFields: []FieldID{k}, KeyWidths: []int{8},
		Entries: []Entry{{Key: []uint32{1}, Data: []int32{5}}},
		Action:  []Op{{Kind: OpSetData, Dst: o, DataIdx: 0}}, DataWidthBits: 8})
	if err := prog5.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
}

func TestEndToEndMiniPipeline(t *testing.T) {
	// Two-stage pipeline: stage 0 classifies k into a bucket via ternary
	// range rules; stage 1 accumulates bucket values via register.
	var l Layout
	k := l.MustAdd("k", 8)
	bucket := l.MustAdd("bucket", 8)
	idx := l.MustAdd("slot", 16)
	acc := l.MustAdd("acc", 32)
	prog := NewProgram("mini", &l, Tofino2)
	prog.Place(0, &Table{
		Name: "range", Kind: MatchTernary,
		KeyFields: []FieldID{k}, KeyWidths: []int{8},
		Entries: []Entry{
			{Key: []uint32{0x00}, Mask: []uint32{0x80}, Data: []int32{0}}, // [0,127]
			{Key: []uint32{0x00}, Mask: []uint32{0x00}, Data: []int32{1}}, // rest
		},
		Action:        []Op{{Kind: OpSetData, Dst: bucket, DataIdx: 0}},
		DataWidthBits: 8,
	})
	reg, _ := NewRegister("cnt", 32, 4)
	ri := prog.AddRegister(reg)
	prog.Place(1, &Table{
		Name: "count", Kind: MatchNone, DefaultData: []int32{},
		Action: []Op{
			{Kind: OpMove, Dst: idx, A: bucket},
			{Kind: OpRegAdd, Reg: ri, Dst: acc, A: idx, B: k},
		},
	})
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	phv := l.NewPHV()
	for _, v := range []int32{10, 200, 30} {
		phv.Reset()
		phv.Set(k, v)
		prog.Process(phv)
	}
	if reg.Get(0) != 40 { // 10 + 30
		t.Fatalf("bucket0 = %d, want 40", reg.Get(0))
	}
	if reg.Get(1) != 200 {
		t.Fatalf("bucket1 = %d, want 200", reg.Get(1))
	}
}
