package pisa

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files from the current output")

// miniProgram builds a small deterministic program exercising every
// rendered construct: ternary and exact tables, a keyless action stage,
// data parameters, a gateway, a register and entry elision.
func miniProgram() *Program {
	l := &Layout{}
	a := l.MustAdd("a", 8)
	b := l.MustAdd("b", 8)
	idx := l.MustAdd("idx", 4)
	acc := l.MustAdd("acc", 16)
	cls := l.MustAdd("class", 8)
	p := NewProgram("mini", l, Tofino2)
	reg, err := NewRegister("flow_state0", 8, 16)
	if err != nil {
		panic(err)
	}
	p.AddRegister(reg)

	p.Place(0, &Table{
		Name: "range_ab", Kind: MatchTernary,
		KeyFields: []FieldID{a, b}, KeyWidths: []int{8, 8},
		Entries: []Entry{
			{Key: []uint32{0x10, 0x00}, Mask: []uint32{0xf0, 0x00}, Data: []int32{1}},
			{Key: []uint32{0x20, 0x40}, Mask: []uint32{0xf0, 0xc0}, Data: []int32{2}},
		},
		Action:        []Op{{Kind: OpSetData, Dst: idx, DataIdx: 0}},
		DataWidthBits: 4,
	})
	// An exact table with more entries than the render limit, to pin the
	// elision behaviour.
	var entries []Entry
	for v := 0; v < p4MaxEntries+3; v++ {
		entries = append(entries, Entry{Key: []uint32{uint32(v)}, Data: []int32{int32(2 * v)}})
	}
	p.Place(1, &Table{
		Name: "map_idx", Kind: MatchExact,
		KeyFields: []FieldID{idx}, KeyWidths: []int{4},
		Entries:       entries,
		Action:        []Op{{Kind: OpSetData, Dst: acc, DataIdx: 0}},
		DefaultData:   []int32{0},
		DataWidthBits: 16,
	})
	p.Place(2, &Table{
		Name: "finish", Kind: MatchNone, DefaultData: []int32{},
		Gate: &Gate{Field: acc, Op: GateGE, Value: 1},
		Action: []Op{
			{Kind: OpShr, Dst: acc, A: acc, Imm: 2},
			{Kind: OpSelGE, Dst: cls, A: acc, B: b, Imm: 1},
		},
	})
	// Stateful RMWs against the flow-state register, pinning the
	// RegisterAction extern rendering: a max tracker and a
	// read-and-replace on exclusive direction gates, and a plain read.
	p.Place(3, &Table{
		Name: "track", Kind: MatchNone, DefaultData: []int32{},
		Gate: &Gate{Field: a, Op: GateEQ, Value: 0},
		Action: []Op{
			{Kind: OpRegMax, Reg: 0, Dst: acc, A: idx, B: b},
		},
	})
	p.Place(3, &Table{
		Name: "swap", Kind: MatchNone, DefaultData: []int32{},
		Gate: &Gate{Field: a, Op: GateEQ, Value: 1},
		Action: []Op{
			{Kind: OpRegExch, Reg: 0, Dst: cls, A: idx, B: b},
		},
	})
	return p
}

// TestP4SourceGolden pins the rendered P4-16 output to a golden file so
// backend changes show up as reviewable diffs. Regenerate with
// `go test ./internal/pisa/ -run TestP4SourceGolden -update-golden`.
func TestP4SourceGolden(t *testing.T) {
	got := P4Source(miniProgram())
	path := filepath.Join("testdata", "mini.golden.p4")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (run with -update-golden to create)", err)
	}
	if got != string(want) {
		t.Fatalf("P4 output drifted from golden file %s.\n--- got ---\n%s", path, got)
	}
}
