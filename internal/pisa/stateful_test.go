package pisa

import (
	"math/rand"
	"sync"
	"testing"
)

// randStatefulProgram builds a random extraction-shaped program: a
// prelude deriving the register slot from the hash field, a run of
// selector-gated tables performing one register RMW each (sharing
// registers only under exclusive equality gates, as the one-RMW rule
// demands), and an always-firing readout. Register sizes are powers of
// two and slots are hash-derived, so the program is engine-shardable.
func randStatefulProgram(t *testing.T, rng *rand.Rand, slots int) (*Program, PacketMeta, []FieldID) {
	t.Helper()
	var l Layout
	hash := l.MustAdd("hash", 32)
	slot := l.MustAdd("slot", 32)
	sel := l.MustAdd("sel", 8)
	val := l.MustAdd("val", 16)
	fire := l.MustAdd("fire", 8)
	outs := []FieldID{
		l.MustAdd("out0", 32), l.MustAdd("out1", 32), l.MustAdd("out2", 32), l.MustAdd("out3", 32),
	}
	prog := NewProgram("stateful-fuzz", &l, Tofino2)

	prog.Place(0, &Table{Name: "prelude", Kind: MatchNone, DefaultData: []int32{},
		Action: []Op{
			{Kind: OpAndImm, Dst: slot, A: hash, Imm: int32(slots - 1)},
			{Kind: OpSet, Dst: fire, Imm: 1},
		}})

	kinds := []OpKind{OpRegAdd, OpRegMax, OpRegMin, OpRegExch, OpRegStore, OpRegLoad, OpRegCntRestart}
	numRegs := 2 + rng.Intn(4)
	stage := 1
	for r := 0; r < numRegs; r++ {
		init := int32(0)
		if rng.Intn(3) == 0 {
			init = int32(rng.Intn(1000) - 500)
		}
		reg, err := NewRegisterInit("r"+string(rune('a'+r)), []int{8, 16, 32}[rng.Intn(3)], slots, init)
		if err != nil {
			t.Fatal(err)
		}
		ri := prog.AddRegister(reg)
		// One to three tables share this register under exclusive
		// equality gates on the selector; each table gets its own stage
		// so the intra-stage write-hazard check stays out of the way.
		users := 1 + rng.Intn(3)
		for u := 0; u < users; u++ {
			k := kinds[rng.Intn(len(kinds))]
			dst := outs[rng.Intn(len(outs))]
			op := Op{Kind: k, Reg: ri, Dst: dst, A: slot, B: val}
			if k == OpRegCntRestart {
				// B doubles as the restart predicate; vary the restart
				// value the counter snaps back to.
				op.Imm = int32(rng.Intn(50))
			}
			prog.Place(stage, &Table{
				Name: "rmw_" + string(rune('a'+r)) + string(rune('0'+u)),
				Kind: MatchNone, DefaultData: []int32{},
				Gate:   &Gate{Field: sel, Op: GateEQ, Value: int32(u)},
				Action: []Op{op},
			})
			stage++
		}
	}
	if err := prog.Validate(); err != nil {
		t.Fatalf("random stateful program invalid: %v", err)
	}
	return prog, PacketMeta{Hash: hash, Fields: []FieldID{sel, val}, Fire: fire}, outs
}

// TestStatefulDifferential fuzzes register programs through every
// execution route: the table interpreter, the compiled plan, and the
// packet engine at several worker counts, all of which must agree on
// every fired output and on the final register state.
func TestStatefulDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		slots := 1 << (2 + rng.Intn(3)) // 4..16
		prog, meta, outs := randStatefulProgram(t, rng, slots)

		npkts := 200 + rng.Intn(200)
		pkts := make([]PacketIn, npkts)
		for i := range pkts {
			pkts[i] = PacketIn{
				Hash:   rng.Uint32(),
				Fields: []int32{int32(rng.Intn(3)), int32(rng.Intn(2000) - 1000)},
			}
		}

		// Reference: sequential interpreter via a 1-worker engine.
		ref := newPacketEngine(prog, meta, outs, outs[0], 1, ExecInterpret)
		prog.ResetState()
		want := ref.RunPackets(pkts)
		wantRegs := snapshotRegs(prog)
		ref.Close()

		for _, workers := range []int{1, 2, 4} {
			for _, mode := range []ExecMode{ExecInterpret, ExecCompiled} {
				eng := newPacketEngine(prog, meta, outs, outs[0], workers, mode)
				prog.ResetState()
				got := eng.RunPackets(pkts)
				gotRegs := snapshotRegs(prog)
				eng.Close()
				if len(got) != len(want) {
					t.Fatalf("trial %d [%v w%d]: %d fires, want %d", trial, mode, workers, len(got), len(want))
				}
				for i := range got {
					if got[i].Pkt != want[i].Pkt || got[i].Class != want[i].Class {
						t.Fatalf("trial %d [%v w%d] fire %d: (pkt %d class %d), want (pkt %d class %d)",
							trial, mode, workers, i, got[i].Pkt, got[i].Class, want[i].Pkt, want[i].Class)
					}
					for j := range got[i].Outs {
						if got[i].Outs[j] != want[i].Outs[j] {
							t.Fatalf("trial %d [%v w%d] pkt %d out[%d]: %d want %d",
								trial, mode, workers, got[i].Pkt, j, got[i].Outs[j], want[i].Outs[j])
						}
					}
				}
				for r := range wantRegs {
					for c := range wantRegs[r] {
						if gotRegs[r][c] != wantRegs[r][c] {
							t.Fatalf("trial %d [%v w%d]: register %d cell %d = %d, want %d",
								trial, mode, workers, r, c, gotRegs[r][c], wantRegs[r][c])
						}
					}
				}
			}
		}
	}
}

// newPacketEngine is a test convenience: a single-program packet engine.
func newPacketEngine(prog *Program, meta PacketMeta, out []FieldID, class FieldID, workers int, mode ExecMode) *Engine {
	e := NewChainEngineMode([]*Program{prog}, nil, nil, out, class, workers, mode)
	e.ConfigurePackets(meta)
	return e
}

// TestValidateOneRMWPerPacket pins the static one-RMW rule: two ops on
// one register in one action, or two tables sharing a register without
// provably exclusive gates, must fail validation; exclusive equality
// gates must pass.
func TestValidateOneRMWPerPacket(t *testing.T) {
	build := func() (*Program, FieldID, FieldID, int) {
		var l Layout
		sel := l.MustAdd("sel", 8)
		v := l.MustAdd("v", 16)
		p := NewProgram("rmw", &l, Tofino2)
		reg, err := NewRegister("r", 16, 8)
		if err != nil {
			t.Fatal(err)
		}
		ri := p.AddRegister(reg)
		return p, sel, v, ri
	}

	// Two RMWs in one action: invalid.
	p, _, v, ri := build()
	p.Place(0, &Table{Name: "twice", Kind: MatchNone, DefaultData: []int32{},
		Action: []Op{
			{Kind: OpRegAdd, Reg: ri, Dst: v, A: v, B: v},
			{Kind: OpRegMax, Reg: ri, Dst: v, A: v, B: v},
		}})
	if err := p.Validate(); err == nil {
		t.Fatal("double RMW in one action validated")
	}

	// Two ungated tables sharing a register: invalid.
	p, _, v, ri = build()
	p.Place(0, &Table{Name: "a", Kind: MatchNone, DefaultData: []int32{},
		Action: []Op{{Kind: OpRegAdd, Reg: ri, Dst: v, A: v, B: v}}})
	p.Place(1, &Table{Name: "b", Kind: MatchNone, DefaultData: []int32{},
		Action: []Op{{Kind: OpRegLoad, Reg: ri, Dst: v, A: v}}})
	if err := p.Validate(); err == nil {
		t.Fatal("unguarded register sharing validated")
	}

	// Same-value equality gates: still overlapping, invalid.
	p, sel, v, ri := build()
	p.Place(0, &Table{Name: "a", Kind: MatchNone, DefaultData: []int32{},
		Gate:   &Gate{Field: sel, Op: GateEQ, Value: 1},
		Action: []Op{{Kind: OpRegAdd, Reg: ri, Dst: v, A: v, B: v}}})
	p.Place(1, &Table{Name: "b", Kind: MatchNone, DefaultData: []int32{},
		Gate:   &Gate{Field: sel, Op: GateEQ, Value: 1},
		Action: []Op{{Kind: OpRegLoad, Reg: ri, Dst: v, A: v}}})
	if err := p.Validate(); err == nil {
		t.Fatal("overlapping equality gates validated")
	}

	// Distinct equality gates on one field: provably exclusive, valid.
	p, sel, v, ri = build()
	p.Place(0, &Table{Name: "a", Kind: MatchNone, DefaultData: []int32{},
		Gate:   &Gate{Field: sel, Op: GateEQ, Value: 0},
		Action: []Op{{Kind: OpRegAdd, Reg: ri, Dst: v, A: v, B: v}}})
	p.Place(1, &Table{Name: "b", Kind: MatchNone, DefaultData: []int32{},
		Gate:   &Gate{Field: sel, Op: GateEQ, Value: 1},
		Action: []Op{{Kind: OpRegLoad, Reg: ri, Dst: v, A: v}}})
	if err := p.Validate(); err != nil {
		t.Fatalf("exclusive equality gates rejected: %v", err)
	}

	// Distinct equality gates whose field is REWRITTEN between the
	// sharing stages: a packet arriving with sel=0 passes the first
	// gate, the rewrite flips sel to 1, and the second gate passes too
	// — two RMWs for one packet, so validation must reject it.
	p, sel, v, ri = build()
	p.Place(0, &Table{Name: "a", Kind: MatchNone, DefaultData: []int32{},
		Gate:   &Gate{Field: sel, Op: GateEQ, Value: 0},
		Action: []Op{{Kind: OpRegAdd, Reg: ri, Dst: v, A: v, B: v}}})
	p.Place(1, &Table{Name: "flip", Kind: MatchNone, DefaultData: []int32{},
		Action: []Op{{Kind: OpSet, Dst: sel, Imm: 1}}})
	p.Place(2, &Table{Name: "b", Kind: MatchNone, DefaultData: []int32{},
		Gate:   &Gate{Field: sel, Op: GateEQ, Value: 1},
		Action: []Op{{Kind: OpRegLoad, Reg: ri, Dst: v, A: v}}})
	if err := p.Validate(); err == nil {
		t.Fatal("gate field rewritten between sharing stages validated")
	}
}

// TestRegExchSemantics pins the read-and-replace op in both execution
// modes: the destination receives the previous cell value, the cell the
// operand.
func TestRegExchSemantics(t *testing.T) {
	var l Layout
	slotF := l.MustAdd("slot", 8)
	in := l.MustAdd("in", 16)
	old := l.MustAdd("old", 16)
	prog := NewProgram("exch", &l, Tofino2)
	reg, err := NewRegisterInit("last", 16, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	ri := prog.AddRegister(reg)
	prog.Place(0, &Table{Name: "x", Kind: MatchNone, DefaultData: []int32{},
		Action: []Op{{Kind: OpRegExch, Reg: ri, Dst: old, A: slotF, B: in}}})
	plan := CompileProgram(prog)

	for _, run := range []struct {
		name string
		proc func(*PHV)
	}{
		{"interp", prog.Process},
		{"compiled", plan.Process},
	} {
		prog.ResetState()
		phv := l.NewPHV()
		seq := []int32{3, 11, 5}
		wantOld := []int32{7, 3, 11} // init 7, then previous writes
		for i, v := range seq {
			phv.Reset()
			phv.Set(slotF, 2)
			phv.Set(in, v)
			run.proc(phv)
			if got := phv.Get(old); got != wantOld[i] {
				t.Fatalf("%s step %d: old = %d, want %d", run.name, i, got, wantOld[i])
			}
		}
		if got := reg.Get(2); got != 5 {
			t.Fatalf("%s: final cell = %d, want 5", run.name, got)
		}
	}
}

// TestRunPacketStreamConcurrent drives the per-packet streaming path
// with concurrent producer/consumer goroutines (the CI race target) and
// checks the fired results stay in arrival order.
func TestRunPacketStreamConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	prog, meta, outs := randStatefulProgram(t, rng, 8)
	eng := newPacketEngine(prog, meta, outs, outs[0], 4, ExecCompiled)
	defer eng.Close()
	prog.ResetState()

	pkts := make([]PacketIn, 5000)
	for i := range pkts {
		pkts[i] = PacketIn{Hash: rng.Uint32(), Fields: []int32{int32(rng.Intn(3)), int32(rng.Intn(100))}}
	}
	in := make(chan PacketIn, 128)
	out := make(chan PacketResult, 128)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, p := range pkts {
			in <- p
		}
		close(in)
	}()
	var got []PacketResult
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := range out {
			got = append(got, r)
		}
	}()
	packets, fires := eng.RunPacketStream(in, out)
	wg.Wait()
	if packets != len(pkts) {
		t.Fatalf("streamed %d packets, want %d", packets, len(pkts))
	}
	if fires != len(got) {
		t.Fatalf("reported %d fires, collected %d", fires, len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Pkt <= got[i-1].Pkt {
			t.Fatalf("fires out of order: %d after %d", got[i].Pkt, got[i-1].Pkt)
		}
	}
	// The 5000-packet trace spans several micro-batches; streamed Outs
	// are detached copies, so every retained result must match a fresh
	// whole-trace batch replay (stale-buffer aliasing would show the
	// last micro-batch's values here).
	prog.ResetState()
	want := eng.RunPackets(pkts)
	if len(want) != len(got) {
		t.Fatalf("batch replay fired %d, stream %d", len(want), len(got))
	}
	for i := range want {
		if got[i].Pkt != want[i].Pkt || got[i].Class != want[i].Class {
			t.Fatalf("fire %d: stream (pkt %d class %d), batch (pkt %d class %d)",
				i, got[i].Pkt, got[i].Class, want[i].Pkt, want[i].Class)
		}
		for j := range want[i].Outs {
			if got[i].Outs[j] != want[i].Outs[j] {
				t.Fatalf("fire %d out[%d]: stream %d, batch %d (stale buffer aliasing?)",
					i, j, got[i].Outs[j], want[i].Outs[j])
			}
		}
	}
}

// TestRegisterBankedLayout pins the arena-compaction contract: logical
// cell contents survive repacking to any shard count (power-of-two fast
// path and the general divisor layout alike), and Get/Set keep
// addressing logical indices.
func TestRegisterBankedLayout(t *testing.T) {
	build := func(size int) (*Program, *Register) {
		var l Layout
		l.MustAdd("x", 32)
		p := NewProgram("bank", &l, Tofino2)
		r, err := NewRegister("state", 32, size)
		if err != nil {
			t.Fatal(err)
		}
		p.AddRegister(r)
		return p, r
	}
	check := func(r *Register, size int, tag string) {
		t.Helper()
		for i := 0; i < size; i++ {
			if got := r.Get(i); got != int32(100+i) {
				t.Fatalf("%s: cell %d = %d, want %d", tag, i, got, 100+i)
			}
		}
	}
	for _, tc := range []struct{ size, shards, reshards int }{
		{8, 4, 2},  // pow2 fast path both ways
		{6, 3, 2},  // general divisor layout
		{6, 4, 1},  // 4 ∤ 6 → natural layout fallback inside rebase
		{16, 1, 8}, // natural → banked
	} {
		p, r := build(tc.size)
		for i := 0; i < tc.size; i++ {
			r.Set(i, int32(100+i))
		}
		p.CompactRegisters(tc.shards)
		check(r, tc.size, "first compaction")
		// Writes through the banked layout must round-trip too.
		for i := 0; i < tc.size; i++ {
			r.Set(i, int32(100+i))
		}
		p.CompactRegisters(tc.reshards)
		check(r, tc.size, "recompaction")
	}
}
