package pisa

import (
	"context"
	"fmt"
	"time"
)

// ShedPolicy bounds a session's queueing before the engine sheds new
// work instead of letting it pile up — the overload-protection knob of
// the serving plane. The zero value never sheds (the historical
// block-until-served behaviour).
//
// Load shedding is REJECT-NEWEST: an over-bound submission is refused
// up front with *ErrOverloaded (carrying the observed depth and recent
// wait so the caller can back off), while work already admitted keeps
// its place in the queue. Bounding the queue is what keeps the queue
// wait of ADMITTED work bounded under sustained overload: with at most
// MaxQueue sessions ahead at a worker, an admitted task waits at most
// about MaxQueue+1 service times instead of growing without limit.
type ShedPolicy struct {
	// MaxQueue sheds a submission that would find at least this many
	// other sessions already queued at one of its target workers
	// (0 = unbounded).
	MaxQueue int
	// MaxWait sheds while the session's recent mean queue wait exceeds
	// this bound (0 = unbounded).
	MaxWait time.Duration
}

// ErrOverloaded is a shed submission: the session's shed policy (or a
// context deadline the recent queue wait cannot meet) rejected the
// batch before it entered the scheduler. Callers back off, reroute or
// drop — the structured depth/wait fields are the congestion signal.
type ErrOverloaded struct {
	// Session is the engine session's registration label.
	Session string
	// Reason names the violated bound: "queue", "wait" or "deadline".
	Reason string
	// Depth is the maximum number of other sessions queued ahead at
	// the session's target workers when the submission was refused.
	Depth int
	// Wait is the session's recent mean queue wait (an EWMA over
	// served tasks) — the delay a newly admitted task should expect.
	Wait time.Duration
	// Packets is the size of the shed submission.
	Packets int
}

func (e *ErrOverloaded) Error() string {
	return fmt.Sprintf("pisa: session %q overloaded (%s bound): %d packets shed at queue depth %d, recent wait %v",
		e.Session, e.Reason, e.Packets, e.Depth, e.Wait)
}

// ErrPoisoned marks a session whose compiled plan panicked during task
// execution. The panic was recovered on the worker — the pool and
// every co-resident session keep serving — but this session's results
// can no longer be trusted: the failed task's results are zero-valued
// and the flow state may be partially updated. The owner should retire
// the session (serve swaps or unregisters it).
type ErrPoisoned struct {
	Session string
	Cause   any // the recovered panic value
}

func (e *ErrPoisoned) Error() string {
	return fmt.Sprintf("pisa: session %q poisoned by plan panic: %v", e.Session, e.Cause)
}

// SetShedPolicy installs (or, with the zero value, removes) the
// session's overload bounds. Takes effect on the next submission;
// safe to call concurrently with serving.
func (e *Engine) SetShedPolicy(p ShedPolicy) {
	e.shedMaxQueue.Store(int32(p.MaxQueue))
	e.shedMaxWait.Store(int64(p.MaxWait))
}

// GetShedPolicy returns the session's current overload bounds.
func (e *Engine) GetShedPolicy() ShedPolicy {
	return ShedPolicy{
		MaxQueue: int(e.shedMaxQueue.Load()),
		MaxWait:  time.Duration(e.shedMaxWait.Load()),
	}
}

// RecentWait returns the session's exponentially-weighted recent mean
// queue wait — the wait a new submission should expect, used by the
// deadline admission check and exported for caller-side backoff.
func (e *Engine) RecentWait() time.Duration {
	return time.Duration(e.stWaitEWMA.Load())
}

// Poisoned returns the session's poison error when a plan panic has
// been isolated to it, nil while the session is healthy.
func (e *Engine) Poisoned() error {
	if p := e.poisoned.Load(); p != nil {
		return &ErrPoisoned{Session: e.name, Cause: p.cause}
	}
	return nil
}

// poisonInfo records the first recovered plan panic of a session.
type poisonInfo struct{ cause any }

// poison marks the session failed with the first recovered panic value
// (later panics keep the original cause).
func (e *Engine) poison(cause any) {
	e.poisoned.CompareAndSwap(nil, &poisonInfo{cause: cause})
}

// admit applies the session's shed policy (and the context deadline,
// if any) to a submission of n packets: nil admits, *ErrOverloaded
// sheds. ctx may be nil. Shed packets are accounted in the session's
// Shed counters.
func (e *Engine) admit(ctx context.Context, n int) error {
	maxQ := int(e.shedMaxQueue.Load())
	maxW := time.Duration(e.shedMaxWait.Load())
	var deadline time.Time
	hasDL := false
	if ctx != nil {
		deadline, hasDL = ctx.Deadline()
	}
	if maxQ <= 0 && maxW <= 0 && !hasDL {
		return nil
	}
	depth := e.sched.queueDepth(e)
	wait := e.RecentWait()
	reason := ""
	switch {
	case maxQ > 0 && depth >= maxQ:
		reason = "queue"
	case maxW > 0 && wait > maxW:
		reason = "wait"
	case hasDL && time.Until(deadline) < wait:
		reason = "deadline"
	}
	if reason == "" {
		return nil
	}
	e.noteShed(n)
	return &ErrOverloaded{Session: e.name, Reason: reason, Depth: depth, Wait: wait, Packets: n}
}

// SubmitBatchCtx is SubmitBatch behind admission control: a poisoned
// session, a cancelled context, or a shed-policy violation rejects the
// batch up front (reject-newest) instead of queueing it. A nil error
// means the batch was admitted and behaves exactly like SubmitBatch.
func (e *Engine) SubmitBatchCtx(ctx context.Context, jobs []Job) (*Pending, error) {
	if err := e.Poisoned(); err != nil {
		return nil, err
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	if err := e.admit(ctx, len(jobs)); err != nil {
		return nil, err
	}
	return e.SubmitBatch(jobs), nil
}

// RunBatchCtx is RunBatch behind the same admission control as
// SubmitBatchCtx.
func (e *Engine) RunBatchCtx(ctx context.Context, jobs []Job) ([]Result, error) {
	p, err := e.SubmitBatchCtx(ctx, jobs)
	if err != nil {
		return nil, err
	}
	res := p.Wait()
	return res, p.Err()
}

// RunPacketsCtx is RunPackets behind admission control: the whole
// packet batch is shed (registers untouched, no fires) when the
// session is over its bounds or poisoned.
func (e *Engine) RunPacketsCtx(ctx context.Context, pkts []PacketIn) ([]PacketResult, error) {
	if err := e.Poisoned(); err != nil {
		return nil, err
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	if err := e.admit(ctx, len(pkts)); err != nil {
		return nil, err
	}
	res := e.RunPackets(pkts)
	return res, e.Poisoned()
}

// DrainTimeout is Drain with a bound: it waits up to d for the
// outstanding batch to finish and reports whether the engine is
// quiescent. d ≤ 0 waits forever (plain Drain). On timeout the batch
// is still in flight — a stalled or stuck worker holds it — and the
// caller must not reuse the engine's buffers; the serving layer
// reports the session in a structured drain error instead of hanging.
func (e *Engine) DrainTimeout(d time.Duration) bool {
	if d <= 0 {
		e.waitBatch()
		return true
	}
	done := make(chan struct{})
	go func() {
		// The helper goroutine outlives a timeout by design: it parks
		// on the batch's done channel until the stuck batch eventually
		// completes (or forever, if it never does) without holding any
		// lock.
		e.waitBatch()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(d):
		return false
	}
}
