// Command pegasus-bench regenerates the paper's evaluation tables and
// figures on the synthetic substrate.
//
// Usage:
//
//	pegasus-bench -experiment all
//	pegasus-bench -experiment table5 -flows 90 -epochs 1.5
//	pegasus-bench -experiment engine -smoke -engine-json BENCH_engine.json
//	pegasus-bench -experiment multimodel -smoke -engine-json BENCH_engine.json
//	pegasus-bench -experiment serving -smoke -engine-json BENCH_engine.json
//	pegasus-bench -experiment resilience -smoke -engine-json BENCH_engine.json
//	pegasus-bench -experiment scaling -engine-json BENCH_engine.json -cpuprofile cpu.pprof
//
// The "engine" experiment measures batched switch-replay throughput per
// worker count; "multimodel" measures concurrent multi-model serving on
// one shared-budget scheduler (solo vs shared per-model throughput);
// "serving" exercises the serving control plane end to end — admission
// latency on both outcomes, live-swap downtime with the co-resident
// throughput dip, SLO tuner convergence, and the final metrics
// snapshot; "resilience" measures overload protection and failure
// recovery with the fault-injection harness — shed rate vs offered
// load behind a reject-newest policy, and a poisoned canary swap's
// auto-rollback latency with its post-rollback equivalence check;
// "scaling" measures steady-state worker scaling under sustained
// generated load (internal/trafficgen). -engine-json additionally
// writes (or, for multimodel/serving/scaling/resilience, merges into)
// the machine-readable report CI tracks. -smoke shrinks dataset,
// training and measurement windows to a few seconds for CI.
//
// The -cpuprofile, -memprofile and -mutexprofile flags write pprof
// profiles covering the selected experiment — the intended workflow for
// hunting scheduler contention or hot-path regressions. Scheduler
// workers label their goroutines with pegasus_worker (worker id) and
// pegasus_session (model name), so CPU samples attribute per session
// and per worker out of the box:
//
//	pegasus-bench -experiment scaling -cpuprofile cpu.pprof
//	go tool pprof -tags cpu.pprof          # sample share per session/worker
//	go tool pprof -tagfocus pegasus_session=cnn-m cpu.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"github.com/pegasus-idp/pegasus/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pegasus-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	exp := flag.String("experiment", "all", "experiment to run: all, table2, table5, table6, fig7, fig8, fig9acc, fig9thr, engine, multimodel, sharedext, serving, resilience, scaling")
	flows := flag.Int("flows", 60, "flows generated per traffic class")
	epochs := flag.Float64("epochs", 1, "training budget multiplier")
	seed := flag.Int64("seed", 1, "random seed")
	smoke := flag.Bool("smoke", false, "CI smoke mode: tiny dataset, minimal training, short measurements")
	engineJSON := flag.String("engine-json", "", "write the engine experiment's machine-readable report to this path")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile covering the experiment to this path")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the experiment to this path")
	mutexProfile := flag.String("mutexprofile", "", "write a mutex-contention profile covering the experiment to this path")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *mutexProfile != "" {
		runtime.SetMutexProfileFraction(5)
		defer func() {
			f, err := os.Create(*mutexProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pegasus-bench: mutex profile:", err)
				return
			}
			defer f.Close()
			if err := pprof.Lookup("mutex").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "pegasus-bench: mutex profile:", err)
			}
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pegasus-bench: heap profile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "pegasus-bench: heap profile:", err)
			}
		}()
	}

	cfg := experiments.Config{
		FlowsPerClass: *flows,
		Epochs:        *epochs,
		Seed:          *seed,
		EngineJSON:    *engineJSON,
	}
	if *smoke {
		// Smoke defaults yield to explicitly passed flags.
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["flows"] {
			cfg.FlowsPerClass = 12
		}
		if !set["epochs"] {
			cfg.Epochs = 0.05
		}
		cfg.MeasureMS = 50
	}
	suite := experiments.NewSuite(cfg)
	return suite.Run(*exp, os.Stdout)
}
