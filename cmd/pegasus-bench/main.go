// Command pegasus-bench regenerates the paper's evaluation tables and
// figures on the synthetic substrate.
//
// Usage:
//
//	pegasus-bench -experiment all
//	pegasus-bench -experiment table5 -flows 90 -epochs 1.5
//	pegasus-bench -experiment engine -smoke -engine-json BENCH_engine.json
//	pegasus-bench -experiment multimodel -smoke -engine-json BENCH_engine.json
//
// The "engine" experiment measures batched switch-replay throughput per
// worker count; "multimodel" measures concurrent multi-model serving on
// one shared-budget scheduler (solo vs shared per-model throughput);
// -engine-json additionally writes (or, for multimodel, merges into)
// the machine-readable report CI tracks. -smoke shrinks dataset,
// training and measurement windows to a few seconds for CI.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/pegasus-idp/pegasus/internal/experiments"
)

func main() {
	exp := flag.String("experiment", "all", "experiment to run: all, table2, table5, table6, fig7, fig8, fig9acc, fig9thr, engine, multimodel")
	flows := flag.Int("flows", 60, "flows generated per traffic class")
	epochs := flag.Float64("epochs", 1, "training budget multiplier")
	seed := flag.Int64("seed", 1, "random seed")
	smoke := flag.Bool("smoke", false, "CI smoke mode: tiny dataset, minimal training, short measurements")
	engineJSON := flag.String("engine-json", "", "write the engine experiment's machine-readable report to this path")
	flag.Parse()

	cfg := experiments.Config{
		FlowsPerClass: *flows,
		Epochs:        *epochs,
		Seed:          *seed,
		EngineJSON:    *engineJSON,
	}
	if *smoke {
		// Smoke defaults yield to explicitly passed flags.
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["flows"] {
			cfg.FlowsPerClass = 12
		}
		if !set["epochs"] {
			cfg.Epochs = 0.05
		}
		cfg.MeasureMS = 50
	}
	suite := experiments.NewSuite(cfg)
	if err := suite.Run(*exp, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pegasus-bench:", err)
		os.Exit(1)
	}
}
