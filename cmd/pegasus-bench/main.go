// Command pegasus-bench regenerates the paper's evaluation tables and
// figures on the synthetic substrate.
//
// Usage:
//
//	pegasus-bench -experiment all
//	pegasus-bench -experiment table5 -flows 90 -epochs 1.5
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/pegasus-idp/pegasus/internal/experiments"
)

func main() {
	exp := flag.String("experiment", "all", "experiment to run: all, table2, table5, table6, fig7, fig8, fig9acc, fig9thr")
	flows := flag.Int("flows", 60, "flows generated per traffic class")
	epochs := flag.Float64("epochs", 1, "training budget multiplier")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	suite := experiments.NewSuite(experiments.Config{
		FlowsPerClass: *flows,
		Epochs:        *epochs,
		Seed:          *seed,
	})
	if err := suite.Run(*exp, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pegasus-bench:", err)
		os.Exit(1)
	}
}
