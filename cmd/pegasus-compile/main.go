// Command pegasus-compile translates a Pegasus Syntax (.pgs) file into a
// compiled switch pipeline and prints the resource report — the
// translation tool of §6.2.
//
// Usage:
//
//	pegasus-compile -f program.pgs [-depth 4] [-calib 512] [-target tofino]
//
// -target selects the emission backend from the registry (tofino,
// tofino-multipipe, smartnic, p4, ...); the p4 target prints the
// generated P4-16 source instead of the resource summary.
//
// Without trained weights the kernel is seeded randomly: the output
// reports the structural cost (stages, SRAM, TCAM, bus) that the real
// table contents would occupy.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"github.com/pegasus-idp/pegasus/internal/core"
	"github.com/pegasus-idp/pegasus/internal/syntax"
)

func main() {
	file := flag.String("f", "", "Pegasus Syntax source file")
	depth := flag.Int("depth", 0, "override clustering depth (0 = from source)")
	calib := flag.Int("calib", 512, "synthetic calibration samples")
	seed := flag.Int64("seed", 1, "random seed")
	target := flag.String("target", "tofino",
		"emission target: "+strings.Join(core.TargetNames(), ", "))
	flag.Parse()
	if *file == "" {
		fmt.Fprintln(os.Stderr, "usage: pegasus-compile -f program.pgs")
		os.Exit(2)
	}
	src, err := os.ReadFile(*file)
	if err != nil {
		fatal(err)
	}
	spec, err := syntax.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	prog, err := syntax.Translate(spec, nil)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("parsed %d input fields; pipeline: %s\n", spec.InputDims(), prog)
	fused := core.Fuse(prog)
	fmt.Printf("after fusion: %s (%d lookups)\n", fused, fused.Lookups())

	d := syntax.ClusteringDepth(spec)
	if *depth > 0 {
		d = *depth
	}
	rng := rand.New(rand.NewSource(*seed))
	samples := make([][]float64, *calib)
	for i := range samples {
		row := make([]float64, spec.InputDims())
		for j := range row {
			row[j] = float64(rng.Intn(1 << spec.InputFields[j].Bits))
		}
		samples[i] = row
	}
	comp, err := core.BuildTables(fused, samples, core.CompileConfig{
		TreeDepth: d, InBits: uint(spec.InputFields[0].Bits),
	})
	if err != nil {
		fatal(err)
	}
	tgt, ok := core.LookupTarget(*target)
	if !ok {
		fatal(fmt.Errorf("unknown target %q (have %s)", *target, strings.Join(core.TargetNames(), ", ")))
	}
	em, err := core.Emit(comp, core.EmitOptions{Target: tgt})
	if err != nil {
		fatal(err)
	}
	if em.Source != "" {
		fmt.Print(em.Source)
		return
	}
	fmt.Print(em.Summary())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pegasus-compile:", err)
	os.Exit(1)
}
