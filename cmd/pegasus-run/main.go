// Command pegasus-run is the end-to-end demo: synthesise traffic, train
// a model, compile it through the staged pass pipeline, replay the test
// traffic through the simulated switch with the batched execution
// engine, and report dataplane accuracy, throughput and resources.
//
// Usage:
//
//	pegasus-run -dataset PeerRush -model cnn-m -flows 60 -workers 8
//	pegasus-run -model mlp-b -target tofino-multipipe
//	pegasus-run -model cnn-b -stream            # stream pre-extracted windows (RunStream)
//	pegasus-run -model cnn-b -packets           # raw-trace replay: per-packet extraction on the switch
//	pegasus-run -model cnn-b -mode interpret    # reference interpreter baseline
//	pegasus-run -models mlp-b,rnn-b             # multi-model serving: one shared-budget scheduler
//	pegasus-run -models cnn-b,cnn-m,rnn-b       # seq models bind ONE physical extraction machine (sharing column + measured RMW saving)
//	pegasus-run -models mlp-b,cnn-b -metrics-addr 127.0.0.1:9090  # + JSON metrics endpoint
//	pegasus-run -models mlp-b,cnn-b -deadline 2ms -max-queue 4    # overload protection: shed instead of queueing
//	pegasus-run -models mlp-b,cnn-b -canary 0.25 -canary-window 500ms  # live canary swap of the first model
//	pegasus-run -model cnn-m -gen 500000        # sustained generated stream (trafficgen) through RunStream
//
// Two replay granularities exist. The default (and -stream, its
// streaming variant) feeds pre-extracted feature windows to the engine
// — the extraction happened on the host. -packets instead feeds the
// raw merged packet trace: the emitted program's own flow-state
// registers perform the Table-6 feature extraction per packet and
// inference fires only on window boundaries.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"github.com/pegasus-idp/pegasus/internal/core"
	"github.com/pegasus-idp/pegasus/internal/datasets"
	"github.com/pegasus-idp/pegasus/internal/models"
	"github.com/pegasus-idp/pegasus/internal/netsim"
	"github.com/pegasus-idp/pegasus/internal/pisa"
	"github.com/pegasus-idp/pegasus/internal/serve"
	"github.com/pegasus-idp/pegasus/internal/trafficgen"
)

func main() {
	dsName := flag.String("dataset", "PeerRush", "PeerRush, CICIOT or ISCXVPN")
	model := flag.String("model", "cnn-m", "mlp-b, cnn-b or cnn-m")
	flows := flag.Int("flows", 60, "flows per class")
	epochs := flag.Int("epochs", 60, "training epochs")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", runtime.NumCPU(), "replay engine workers (flow-hash shards)")
	target := flag.String("target", "", "emission target: "+strings.Join(core.TargetNames(), ", ")+" (default tofino)")
	mode := flag.String("mode", "compiled", "engine execution mode: compiled (zero-alloc plans) or interpret (reference tables)")
	stream := flag.Bool("stream", false, "stream PRE-EXTRACTED feature windows through RunStream instead of one batch (host-side extraction; see -packets for the raw-trace path)")
	packets := flag.Bool("packets", false, "replay the RAW merged packet trace: the emitted program's registers extract features per packet and fire inference on window boundaries")
	multi := flag.String("models", "", "comma-separated models (mlp-b,cnn-b,cnn-m,rnn-b) served CONCURRENTLY through the serving control plane (admission-checked, SLO-tuned), with per-model packets/s")
	metricsAddr := flag.String("metrics-addr", "", "with -models: serve the control plane's JSON metrics endpoint on this address (e.g. 127.0.0.1:9090, or :0 for an ephemeral port) and print a snapshot after the run")
	deadline := flag.Duration("deadline", 0, "with -models: per-batch submission deadline; batches the recent queue wait cannot meet are shed up front (reject-newest) instead of queueing")
	maxQueue := flag.Int("max-queue", 0, "with -models: shed a model's batch when at least this many other sessions are queued at its workers (0 = unbounded)")
	canary := flag.Float64("canary", 0, "with -models: after the run warms up, canary-swap the FIRST model to a re-emitted version mirroring this fraction of its traffic, auto-promoting or auto-rolling-back")
	canaryWindow := flag.Duration("canary-window", time.Second, "with -canary: decision window for the canary verdict")
	gen := flag.Int("gen", 0, "stream this many GENERATED feature windows (internal/trafficgen, steady-state flow churn) through RunStream instead of replaying the test trace")
	genFlows := flag.Int("gen-flows", 1<<14, "live-flow population held by the -gen traffic generator")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile covering the replay to this path (worker goroutines carry pegasus_worker/pegasus_session pprof labels)")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		check(err)
		defer f.Close()
		check(pprof.StartCPUProfile(f))
		defer pprof.StopCPUProfile()
	}

	var execMode pisa.ExecMode
	switch *mode {
	case "compiled":
		execMode = pisa.ExecCompiled
	case "interpret", "interpreted":
		execMode = pisa.ExecInterpret
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q (compiled or interpret)\n", *mode)
		os.Exit(2)
	}

	ds, ok := datasets.ByName(*dsName, datasets.Config{FlowsPerClass: *flows, Seed: *seed})
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *dsName)
		os.Exit(2)
	}
	train, _, test := ds.Split(*seed + 7)
	rng := rand.New(rand.NewSource(*seed))

	if *multi != "" {
		runMultiModels(strings.Split(*multi, ","), ds.NumClasses(), train, test,
			*epochs, *seed, *workers, execMode, *metricsAddr,
			*deadline, *maxQueue, *canary, *canaryWindow, rng)
		return
	}
	if *metricsAddr != "" || *deadline != 0 || *maxQueue != 0 || *canary != 0 {
		fmt.Fprintln(os.Stderr, "-metrics-addr, -deadline, -max-queue and -canary require -models (the serving control plane)")
		os.Exit(2)
	}
	var m *models.Feedforward
	switch *model {
	case "mlp-b":
		m = models.NewMLPB(ds.NumClasses(), rng)
	case "cnn-b":
		m = models.NewCNNB(ds.NumClasses(), rng)
	case "cnn-m":
		m = models.NewCNNM(ds.NumClasses(), rng)
	default:
		fmt.Fprintf(os.Stderr, "unknown model %q\n", *model)
		os.Exit(2)
	}
	if *target != "" {
		tgt, ok := core.LookupTarget(*target)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown target %q (have %s)\n", *target, strings.Join(core.TargetNames(), ", "))
			os.Exit(2)
		}
		m.Opts.Emit.Target = tgt
	}
	fmt.Printf("training %s on %s (%d train / %d test flows)...\n", m.Name, ds.Name, len(train), len(test))
	m.Train(train, models.TrainOpts{Epochs: *epochs, Seed: *seed})
	full, err := m.EvalFull(test, ds.NumClasses())
	check(err)
	fmt.Printf("full precision:  PR %.4f  RC %.4f  F1 %.4f\n", full.Precision, full.Recall, full.F1)

	check(m.Compile(train))
	peg, err := m.EvalPegasus(test, ds.NumClasses())
	check(err)
	fmt.Printf("pegasus (tables): PR %.4f  RC %.4f  F1 %.4f  (Δ %.4f)\n",
		peg.Precision, peg.Recall, peg.F1, peg.F1-full.F1)

	if *packets {
		runPackets(m, test, *workers, execMode)
		fmt.Println()
		fmt.Print(m.Pipeline().DiagString())
		return
	}

	em, err := m.Emit(1 << 16)
	check(err)

	// Replay the test set through the emitted program with the
	// persistent flow-sharded engine — what the switch dataplane would
	// classify. -stream drives the same pool through RunStream, feeding
	// packets over a channel instead of one pre-built batch.
	xs, ys := m.Extract(test)
	jobs := core.BatchJobsFromFloats(xs)
	eng := em.NewEngineMode(*workers, execMode)
	defer eng.Close()
	if *gen > 0 {
		runGenerated(eng, jobs, *gen, *genFlows, *seed, execMode)
		fmt.Println()
		fmt.Print(m.Pipeline().DiagString())
		return
	}
	start := time.Now()
	var res []pisa.Result
	if *stream {
		in := make(chan pisa.Job, 256)
		out := make(chan pisa.Result, 256)
		go func() {
			for _, j := range jobs {
				in <- j
			}
			close(in)
		}()
		go eng.RunStream(in, out)
		for r := range out {
			res = append(res, r)
		}
	} else {
		res = eng.RunBatch(jobs)
	}
	elapsed := time.Since(start)
	hit := 0
	for i, r := range res {
		if r.Class == ys[i] {
			hit++
		}
	}
	how := "batch"
	if *stream {
		how = "stream"
	}
	fmt.Printf("switch replay:    %d/%d correct (%.4f) over %d packets in %s (%.3g pkt/s, %d workers, %s, %s)\n",
		hit, len(res), float64(hit)/float64(len(res)), len(res), elapsed.Round(time.Microsecond),
		float64(len(res))/elapsed.Seconds(), eng.Workers(), execMode, how)

	fmt.Println()
	fmt.Print(m.Pipeline().DiagString())
	fmt.Println()
	fmt.Print(em.Summary())
}

// runGenerated streams count generated feature windows through
// RunStream: the input vectors are the real extracted test windows (so
// the match-table hit profile matches trace replay) but the flow hashes
// come from trafficgen's churning steady-state population — the stream
// never repeats and the pool never drains, so the figure is sustained
// streaming throughput rather than short-trace amortisation.
func runGenerated(eng *pisa.Engine, templates []pisa.Job, count, flows int, seed int64, execMode pisa.ExecMode) {
	tmpl := make([][]int32, len(templates))
	for i := range templates {
		tmpl[i] = templates[i].In
	}
	g := trafficgen.NewJobGen(trafficgen.Config{Seed: seed, Flows: flows}, tmpl)
	in := make(chan pisa.Job, 1024)
	out := make(chan pisa.Result, 1024)
	go func() {
		// Jobs (not Fill): streamed jobs are in flight beyond the next
		// refill, so they cannot alias the generator's reused arena.
		const chunk = 8192
		for left := count; left > 0; {
			n := chunk
			if left < n {
				n = left
			}
			for _, j := range g.Jobs(n) {
				in <- j
			}
			left -= n
		}
		close(in)
	}()
	busy0 := eng.Stats().Busy
	start := time.Now()
	go eng.RunStream(in, out)
	got := 0
	for range out {
		got++
	}
	elapsed := time.Since(start)
	// Busy-share sum over the wall window: ~N on an N-core box means the
	// workers really ran in parallel; ~1 means the flat worker axis is
	// the box, not the engine.
	parallel := (eng.Stats().Busy - busy0).Seconds() / elapsed.Seconds()
	fmt.Printf("generated stream: %d windows in %s (%.3g pkt/s, %d workers, %.2fx achieved parallelism, %s, %d-flow population)\n",
		got, elapsed.Round(time.Microsecond), float64(got)/elapsed.Seconds(),
		eng.Workers(), parallel, execMode, flows)
}

// runPackets replays the raw merged test trace through the per-packet
// engine path: the emitted extraction machine updates flow-state
// registers on every packet and classification fires on window
// boundaries. Models whose inference already fills the single pipe
// (MLP-B) fall back to the two-pipe Tofino split automatically.
func runPackets(m *models.Feedforward, test []netsim.Flow, workers int, execMode pisa.ExecMode) {
	emp, err := m.EmitPackets(1 << 16)
	if err != nil && m.Pipeline().Opts.Emit.Target == nil {
		tgt, _ := core.LookupTarget("tofino-multipipe")
		m.Pipeline().Opts.Emit.Target = tgt
		fmt.Println("single pipe too small for extraction + inference; using tofino-multipipe")
		emp, err = m.EmitPackets(1 << 16)
	}
	check(err)

	stream := netsim.Merge(test)
	jobs := models.PacketJobs(emp, stream)
	labels := make([]int, len(stream))
	for i, sp := range stream {
		labels[i] = sp.Flow.Class
	}

	eng := emp.NewPacketEngine(workers, execMode)
	defer eng.Close()
	in := make(chan pisa.PacketIn, 1024)
	out := make(chan pisa.PacketResult, 1024)
	go func() {
		for _, j := range jobs {
			in <- j
		}
		close(in)
	}()
	hit := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for r := range out {
			if r.Class == labels[r.Pkt] {
				hit++
			}
		}
	}()
	start := time.Now()
	total, fires := eng.RunPacketStream(in, out)
	<-done
	elapsed := time.Since(start)
	acc := 0.0
	if fires > 0 {
		acc = float64(hit) / float64(fires)
	}
	fmt.Printf("packet replay:    %d raw packets in %s (%.3g pkt/s, %d workers, %s)\n",
		total, elapsed.Round(time.Microsecond), float64(total)/elapsed.Seconds(), eng.Workers(), execMode)
	fmt.Printf("                  %d windows fired, %d/%d correct (%.4f) — per-packet register extraction on-switch\n",
		fires, hit, fires, acc)
	fmt.Println()
	fmt.Print(emp.Summary())
}

// servedModel is one model of a multi-model run: its window-replay
// emission, pre-extracted test jobs and ground-truth labels. reemit
// produces a fresh emission of the same trained model — the canary
// swap's candidate generation.
type servedModel struct {
	name   string
	em     *core.Emitted
	jobs   []pisa.Job
	ys     []int
	reemit func() (*core.Emitted, error)
	// kind is the model's packet-extraction spec kind; emitShared and
	// emitPackets re-emit it as a shared-machine subscriber or with its
	// private fused prelude (for the physical-sharing path and its
	// measured RMW baseline).
	kind        core.ExtractKind
	emitShared  func(*core.SharedExtraction) (*core.Emitted, error)
	emitPackets func(flows int) (*core.Emitted, error)
}

// buildServed trains, compiles and emits one model of the -models list.
func buildServed(name string, k int, train, test []netsim.Flow, epochs int, seed int64, rng *rand.Rand) (servedModel, error) {
	var em *core.Emitted
	var xs [][]float64
	var ys []int
	var reemit func() (*core.Emitted, error)
	var kind core.ExtractKind
	var emitShared func(*core.SharedExtraction) (*core.Emitted, error)
	var emitPackets func(flows int) (*core.Emitted, error)
	var err error
	switch name {
	case "mlp-b", "cnn-b", "cnn-m":
		var m *models.Feedforward
		switch name {
		case "mlp-b":
			m = models.NewMLPB(k, rng)
		case "cnn-b":
			m = models.NewCNNB(k, rng)
		case "cnn-m":
			m = models.NewCNNM(k, rng)
		}
		m.Train(train, models.TrainOpts{Epochs: epochs, Seed: seed})
		if err = m.Compile(train); err != nil {
			return servedModel{}, err
		}
		if em, err = m.Emit(1 << 16); err != nil {
			return servedModel{}, err
		}
		xs, ys = m.Extract(test)
		reemit = func() (*core.Emitted, error) { return m.Emit(1 << 16) }
		kind, emitShared, emitPackets = m.PacketExtract, m.EmitShared, m.EmitPackets
	case "rnn-b":
		m := models.NewRNNB(k, rng)
		m.Train(train, models.TrainOpts{Epochs: epochs, LR: 0.02, Seed: seed})
		if err = m.Compile(train); err != nil {
			return servedModel{}, err
		}
		if em, err = m.Emit(1 << 16); err != nil {
			return servedModel{}, err
		}
		xs, ys = models.ExtractSeq(test)
		reemit = func() (*core.Emitted, error) { return m.Emit(1 << 16) }
		kind, emitShared, emitPackets = core.ExtractSeq, m.EmitShared, m.EmitPackets
	default:
		return servedModel{}, fmt.Errorf("unknown model %q in -models (mlp-b, cnn-b, cnn-m, rnn-b)", name)
	}
	return servedModel{name: name, em: em, jobs: core.BatchJobsFromFloats(xs), ys: ys, reemit: reemit,
		kind: kind, emitShared: emitShared, emitPackets: emitPackets}, nil
}

// runMultiModels is the -models path: every named model is trained,
// compiled and emitted, then registered through the serving control
// plane — admission control validates each candidate against the
// combined deployment budget (growing the pipe count until the set
// fits), the SLO tuner balances the shared pool toward equal busy-time
// shares during the replay window, and -metrics-addr exposes the
// control plane's JSON metrics endpoint while the run is live.
// -deadline/-max-queue arm per-model overload protection (shed batches
// land in the "shed" column) and -canary performs a live canary swap of
// the first model mid-run.
func runMultiModels(names []string, k int, train, test []netsim.Flow, epochs int, seed int64, workers int, execMode pisa.ExecMode, metricsAddr string, deadline time.Duration, maxQueue int, canaryFrac float64, canaryWindow time.Duration, rng *rand.Rand) {
	var served []servedModel
	for _, raw := range names {
		name := strings.TrimSpace(raw)
		if name == "" {
			continue
		}
		fmt.Printf("training %s (%d train / %d test flows)...\n", name, len(train), len(test))
		sm, err := buildServed(name, k, train, test, epochs, seed, rng)
		check(err)
		served = append(served, sm)
	}
	if len(served) == 0 {
		check(fmt.Errorf("-models selected no models"))
	}

	// Physically shared extraction: models resolving the same window
	// spec are re-emitted as register-free subscribers of ONE standalone
	// extraction machine — registration attaches them to its fan-out, so
	// the per-packet flow-state RMWs run once no matter how many models
	// are co-resident. The first model stays private when a canary swap
	// is requested (canaries are not supported on subscribers).
	machines := map[core.ExtractKind]*core.SharedExtraction{}
	shareFrom := 0
	if canaryFrac > 0 {
		shareFrom = 1
	}
	byKind := map[core.ExtractKind][]int{}
	for i := shareFrom; i < len(served); i++ {
		byKind[served[i].kind] = append(byKind[served[i].kind], i)
	}
	for kind, idxs := range byKind {
		if len(idxs) < 2 {
			continue
		}
		shared, err := core.EmitSharedExtraction(fmt.Sprintf("px-shared-%v", kind),
			pisa.Tofino2, models.SharedWindowSpec(kind), 1<<16)
		check(err)
		for _, i := range idxs {
			em, err := served[i].emitShared(shared)
			check(err)
			served[i].em = em
			es := served[i].emitShared
			served[i].reemit = func() (*core.Emitted, error) { return es(shared) }
		}
		machines[kind] = shared
	}

	// Admission-controlled registration: start from a single switch and
	// double the pipe count whenever the combined budget rejects a
	// model, reporting what the admission check said each time.
	var srv *serve.Server
	ms := make([]*serve.Model, 0, len(served))
	pipes := 1
	for ; pipes <= 16; pipes *= 2 {
		srv = serve.NewServer(serve.Options{
			Name: "pegasus-run", Cap: pisa.Tofino2.Pipes(pipes),
			Budget: workers, Mode: execMode,
		})
		ms = ms[:0]
		ok := true
		for _, sm := range served {
			m, err := srv.Register(sm.name, sm.em, 1, serve.SLO{TargetShare: 1 / float64(len(served))})
			if err != nil {
				var ae *serve.AdmissionError
				if !errors.As(err, &ae) {
					check(err)
				}
				fmt.Printf("admission: Tofino2.Pipes(%d) rejects %s: %v\n", pipes, sm.name, ae.Report)
				ok = false
				break
			}
			ms = append(ms, m)
		}
		if ok {
			break
		}
		srv.Close()
	}
	if pipes > 16 {
		check(fmt.Errorf("-models set does not fit 16 pipes"))
	}
	defer srv.Close()
	dep := srv.Deployment()
	stages, sram, tcam := dep.Headroom()
	fmt.Printf("admitted %d models on Tofino2.Pipes(%d); headroom %d stages, %.1f Mb SRAM, %.1f Mb TCAM\n",
		len(ms), pipes, stages, float64(sram)/1e6, float64(tcam)/1e6)

	if maxQueue > 0 {
		for _, m := range ms {
			m.SetShedPolicy(pisa.ShedPolicy{MaxQueue: maxQueue})
		}
	}

	// The metrics endpoint runs on an owned http.Server so the run can
	// shut it down cleanly afterwards — Serve's accept loop and any
	// in-flight handlers are gone before the process reports success,
	// instead of leaking past the run.
	var lis net.Listener
	var hsrv *http.Server
	if metricsAddr != "" {
		var err error
		lis, err = net.Listen("tcp", metricsAddr)
		check(err)
		hsrv = &http.Server{Handler: srv}
		go func() { _ = hsrv.Serve(lis) }()
		fmt.Printf("metrics endpoint: http://%s/\n", lis.Addr())
	}

	// Replay every model's test set concurrently for a fixed wall
	// window with the SLO feedback loop running; the shared pool drains
	// the per-model queues by tuned weight. -deadline bounds every
	// submission; shed batches are skipped (reject-newest) and counted.
	const measure = 2 * time.Second
	srv.StartTuner(measure / 8)
	hits := make([]int, len(served))
	last := make([][]pisa.Result, len(served))
	runOnce := func(i int) {
		if deadline <= 0 && maxQueue <= 0 {
			last[i] = ms[i].Run(served[i].jobs)
			return
		}
		ctx := context.Background()
		cancel := context.CancelFunc(func() {})
		if deadline > 0 {
			ctx, cancel = context.WithTimeout(ctx, deadline)
		}
		res, err := ms[i].RunCtx(ctx, served[i].jobs)
		cancel()
		if err != nil {
			var ov *pisa.ErrOverloaded
			if !errors.As(err, &ov) {
				check(err)
			}
			return // shed: back off to the next iteration
		}
		last[i] = res
	}

	// A canary swap of the first model, launched once traffic is warm:
	// the re-emitted candidate shadows a fraction of live submissions
	// and the verdict (promote or roll back) prints with the results.
	canaryCh := make(chan string, 1)
	if canaryFrac > 0 {
		go func() {
			time.Sleep(measure / 8)
			em2, err := served[0].reemit()
			if err != nil {
				canaryCh <- fmt.Sprintf("canary %s: re-emit failed: %v", served[0].name, err)
				return
			}
			rep, err := ms[0].Swap(em2, serve.SwapOptions{
				MigrateState: true,
				Canary: &serve.CanaryOptions{
					Fraction: canaryFrac, MinSamples: 64, Window: canaryWindow,
				},
			})
			if err != nil {
				canaryCh <- fmt.Sprintf("canary %s: %v", served[0].name, err)
				return
			}
			if rep.RolledBack {
				canaryCh <- fmt.Sprintf("canary %s: ROLLED BACK after %d samples (%s)",
					rep.Model, rep.CanarySamples, rep.RollbackReason)
				return
			}
			canaryCh <- fmt.Sprintf("canary %s: promoted v%d -> v%d after %d samples (disagreement %.4f, downtime %s)",
				rep.Model, rep.From, rep.To, rep.CanarySamples, rep.Disagreement, rep.Downtime.Round(time.Microsecond))
		}()
	}

	var wg sync.WaitGroup
	start := time.Now()
	for i := range served {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for time.Since(start) < measure {
				runOnce(i)
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	srv.StopTuner()

	// The canary verdict only advances at submission boundaries: keep
	// the first model's traffic flowing until the decision lands (or a
	// bounded grace period expires and Close aborts the shadow).
	canaryMsg := ""
	if canaryFrac > 0 {
		grace := time.Now().Add(measure)
	waitVerdict:
		for {
			select {
			case canaryMsg = <-canaryCh:
				break waitVerdict
			default:
				if time.Now().After(grace) {
					canaryMsg = fmt.Sprintf("canary %s: no verdict within the run; shadow aborted at close", served[0].name)
					break waitVerdict
				}
				runOnce(0)
			}
		}
	}

	fmt.Printf("\nmulti-model serving: %d models, %d-worker shared budget, %s wall (%s)\n",
		len(served), srv.Scheduler().Budget(), wall.Round(time.Millisecond), execMode)
	if deadline > 0 || maxQueue > 0 {
		fmt.Printf("overload protection: deadline %v, max queue %d\n", deadline, maxQueue)
	}
	if canaryMsg != "" {
		fmt.Println(canaryMsg)
	}
	fmt.Printf("%-8s %4s %6s %14s %10s %8s %10s %8s %-18s\n", "model", "ver", "weight", "pkt/s", "accuracy", "occ", "batches", "shed", "sharing")
	for i, m := range ms {
		st := m.Stats()
		for j, r := range last[i] {
			if r.Class == served[i].ys[j] {
				hits[i]++
			}
		}
		acc := float64(hits[i]) / float64(len(served[i].jobs))
		occ := st.Busy.Seconds() / (wall.Seconds() * float64(srv.Scheduler().Budget()))
		sharing := "-"
		if spec, subs, ok := m.SharedMachine(); ok {
			sharing = fmt.Sprintf("px-shared-%v (%d)", spec.Kind, len(subs))
		}
		fmt.Printf("%-8s %4d %6d %14.3g %10.4f %7.1f%% %10d %8d %-18s\n",
			m.Name(), m.Version(), m.Weight(), float64(st.Packets)/wall.Seconds(), acc,
			100*occ, st.Tasks, st.Shed, sharing)
	}

	// Measured per-packet RMW saving: replay the merged raw test trace
	// once through each shared machine's fan-out (every subscriber
	// classifies the fired windows, the machine pays the register RMWs
	// exactly once) and once through one member's private fused-prelude
	// engine as the baseline.
	if len(machines) > 0 {
		merged := netsim.Merge(test)
		for kind, shared := range machines {
			var idxs []int
			for i := range served {
				if served[i].em.Shared == shared {
					idxs = append(idxs, i)
				}
			}
			pkts := models.PacketJobs(shared.Em, merged)
			_ = ms[idxs[0]].RunPackets(pkts)
			var mach *serve.MachineMetrics
			snap := srv.Snapshot()
			for j := range snap.Machines {
				for _, sub := range snap.Machines[j].Subscribers {
					if sub == served[idxs[0]].name {
						mach = &snap.Machines[j]
					}
				}
			}
			if mach == nil || mach.Packets == 0 {
				continue
			}
			sharedPer := float64(mach.RegRMWs) / float64(mach.Packets)
			privPer := 0.0
			for _, i := range idxs {
				emp, err := served[i].emitPackets(1 << 16)
				if err != nil {
					continue // e.g. the private prelude overflows this capacity
				}
				eng := emp.NewPacketEngine(workers, execMode)
				eng.ResetState()
				eng.RunPackets(pkts)
				st := eng.Stats()
				eng.Close()
				privPer = float64(st.RegRMWs) / float64(st.Packets)
				break
			}
			n := len(idxs)
			if privPer > 0 {
				fmt.Printf("shared extraction px-shared-%v: %.1f register RMWs/pkt once for %d models; private preludes pay %.1f/model (%.1f total) — %.0f%% fewer RMWs\n",
					kind, sharedPer, n, privPer, float64(n)*privPer, 100*(1-sharedPer/(float64(n)*privPer)))
			} else {
				fmt.Printf("shared extraction px-shared-%v: %.1f register RMWs/pkt once for %d models (no private baseline fits this capacity)\n",
					kind, sharedPer, n)
			}
		}
	}

	// With a live endpoint, fetch and print one snapshot through HTTP —
	// the same JSON a scraper would see — then shut the server down so
	// nothing outlives the run.
	if hsrv != nil {
		resp, err := http.Get("http://" + lis.Addr().String() + "/")
		check(err)
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		check(err)
		fmt.Printf("\nmetrics snapshot (%s):\n%s", lis.Addr(), body)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		check(hsrv.Shutdown(shutdownCtx))
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pegasus-run:", err)
		os.Exit(1)
	}
}
