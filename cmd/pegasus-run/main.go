// Command pegasus-run is the end-to-end demo: synthesise traffic, train
// a model, compile it through the staged pass pipeline, replay the test
// traffic through the simulated switch with the batched execution
// engine, and report dataplane accuracy, throughput and resources.
//
// Usage:
//
//	pegasus-run -dataset PeerRush -model cnn-m -flows 60 -workers 8
//	pegasus-run -model mlp-b -target tofino-multipipe
//	pegasus-run -model cnn-b -stream            # stream pre-extracted windows (RunStream)
//	pegasus-run -model cnn-b -packets           # raw-trace replay: per-packet extraction on the switch
//	pegasus-run -model cnn-b -mode interpret    # reference interpreter baseline
//
// Two replay granularities exist. The default (and -stream, its
// streaming variant) feeds pre-extracted feature windows to the engine
// — the extraction happened on the host. -packets instead feeds the
// raw merged packet trace: the emitted program's own flow-state
// registers perform the Table-6 feature extraction per packet and
// inference fires only on window boundaries.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/pegasus-idp/pegasus/internal/core"
	"github.com/pegasus-idp/pegasus/internal/datasets"
	"github.com/pegasus-idp/pegasus/internal/models"
	"github.com/pegasus-idp/pegasus/internal/netsim"
	"github.com/pegasus-idp/pegasus/internal/pisa"
)

func main() {
	dsName := flag.String("dataset", "PeerRush", "PeerRush, CICIOT or ISCXVPN")
	model := flag.String("model", "cnn-m", "mlp-b, cnn-b or cnn-m")
	flows := flag.Int("flows", 60, "flows per class")
	epochs := flag.Int("epochs", 60, "training epochs")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", runtime.NumCPU(), "replay engine workers (flow-hash shards)")
	target := flag.String("target", "", "emission target: "+strings.Join(core.TargetNames(), ", ")+" (default tofino)")
	mode := flag.String("mode", "compiled", "engine execution mode: compiled (zero-alloc plans) or interpret (reference tables)")
	stream := flag.Bool("stream", false, "stream PRE-EXTRACTED feature windows through RunStream instead of one batch (host-side extraction; see -packets for the raw-trace path)")
	packets := flag.Bool("packets", false, "replay the RAW merged packet trace: the emitted program's registers extract features per packet and fire inference on window boundaries")
	flag.Parse()

	var execMode pisa.ExecMode
	switch *mode {
	case "compiled":
		execMode = pisa.ExecCompiled
	case "interpret", "interpreted":
		execMode = pisa.ExecInterpret
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q (compiled or interpret)\n", *mode)
		os.Exit(2)
	}

	ds, ok := datasets.ByName(*dsName, datasets.Config{FlowsPerClass: *flows, Seed: *seed})
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *dsName)
		os.Exit(2)
	}
	train, _, test := ds.Split(*seed + 7)
	rng := rand.New(rand.NewSource(*seed))
	var m *models.Feedforward
	switch *model {
	case "mlp-b":
		m = models.NewMLPB(ds.NumClasses(), rng)
	case "cnn-b":
		m = models.NewCNNB(ds.NumClasses(), rng)
	case "cnn-m":
		m = models.NewCNNM(ds.NumClasses(), rng)
	default:
		fmt.Fprintf(os.Stderr, "unknown model %q\n", *model)
		os.Exit(2)
	}
	if *target != "" {
		tgt, ok := core.LookupTarget(*target)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown target %q (have %s)\n", *target, strings.Join(core.TargetNames(), ", "))
			os.Exit(2)
		}
		m.Opts.Emit.Target = tgt
	}
	fmt.Printf("training %s on %s (%d train / %d test flows)...\n", m.Name, ds.Name, len(train), len(test))
	m.Train(train, models.TrainOpts{Epochs: *epochs, Seed: *seed})
	full, err := m.EvalFull(test, ds.NumClasses())
	check(err)
	fmt.Printf("full precision:  PR %.4f  RC %.4f  F1 %.4f\n", full.Precision, full.Recall, full.F1)

	check(m.Compile(train))
	peg, err := m.EvalPegasus(test, ds.NumClasses())
	check(err)
	fmt.Printf("pegasus (tables): PR %.4f  RC %.4f  F1 %.4f  (Δ %.4f)\n",
		peg.Precision, peg.Recall, peg.F1, peg.F1-full.F1)

	if *packets {
		runPackets(m, test, *workers, execMode)
		fmt.Println()
		fmt.Print(m.Pipeline().DiagString())
		return
	}

	em, err := m.Emit(1 << 16)
	check(err)

	// Replay the test set through the emitted program with the
	// persistent flow-sharded engine — what the switch dataplane would
	// classify. -stream drives the same pool through RunStream, feeding
	// packets over a channel instead of one pre-built batch.
	xs, ys := m.Extract(test)
	jobs := core.BatchJobsFromFloats(xs)
	eng := em.NewEngineMode(*workers, execMode)
	defer eng.Close()
	start := time.Now()
	var res []pisa.Result
	if *stream {
		in := make(chan pisa.Job, 256)
		out := make(chan pisa.Result, 256)
		go func() {
			for _, j := range jobs {
				in <- j
			}
			close(in)
		}()
		go eng.RunStream(in, out)
		for r := range out {
			res = append(res, r)
		}
	} else {
		res = eng.RunBatch(jobs)
	}
	elapsed := time.Since(start)
	hit := 0
	for i, r := range res {
		if r.Class == ys[i] {
			hit++
		}
	}
	how := "batch"
	if *stream {
		how = "stream"
	}
	fmt.Printf("switch replay:    %d/%d correct (%.4f) over %d packets in %s (%.3g pkt/s, %d workers, %s, %s)\n",
		hit, len(res), float64(hit)/float64(len(res)), len(res), elapsed.Round(time.Microsecond),
		float64(len(res))/elapsed.Seconds(), eng.Workers(), execMode, how)

	fmt.Println()
	fmt.Print(m.Pipeline().DiagString())
	fmt.Println()
	fmt.Print(em.Summary())
}

// runPackets replays the raw merged test trace through the per-packet
// engine path: the emitted extraction machine updates flow-state
// registers on every packet and classification fires on window
// boundaries. Models whose inference already fills the single pipe
// (MLP-B) fall back to the two-pipe Tofino split automatically.
func runPackets(m *models.Feedforward, test []netsim.Flow, workers int, execMode pisa.ExecMode) {
	emp, err := m.EmitPackets(1 << 16)
	if err != nil && m.Pipeline().Opts.Emit.Target == nil {
		tgt, _ := core.LookupTarget("tofino-multipipe")
		m.Pipeline().Opts.Emit.Target = tgt
		fmt.Println("single pipe too small for extraction + inference; using tofino-multipipe")
		emp, err = m.EmitPackets(1 << 16)
	}
	check(err)

	stream := netsim.Merge(test)
	jobs := models.PacketJobs(emp, stream)
	labels := make([]int, len(stream))
	for i, sp := range stream {
		labels[i] = sp.Flow.Class
	}

	eng := emp.NewPacketEngine(workers, execMode)
	defer eng.Close()
	in := make(chan pisa.PacketIn, 1024)
	out := make(chan pisa.PacketResult, 1024)
	go func() {
		for _, j := range jobs {
			in <- j
		}
		close(in)
	}()
	hit := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for r := range out {
			if r.Class == labels[r.Pkt] {
				hit++
			}
		}
	}()
	start := time.Now()
	total, fires := eng.RunPacketStream(in, out)
	<-done
	elapsed := time.Since(start)
	acc := 0.0
	if fires > 0 {
		acc = float64(hit) / float64(fires)
	}
	fmt.Printf("packet replay:    %d raw packets in %s (%.3g pkt/s, %d workers, %s)\n",
		total, elapsed.Round(time.Microsecond), float64(total)/elapsed.Seconds(), eng.Workers(), execMode)
	fmt.Printf("                  %d windows fired, %d/%d correct (%.4f) — per-packet register extraction on-switch\n",
		fires, hit, fires, acc)
	fmt.Println()
	fmt.Print(emp.Summary())
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pegasus-run:", err)
		os.Exit(1)
	}
}
