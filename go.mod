module github.com/pegasus-idp/pegasus

go 1.24
